package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHDRBucketContinuity walks the full bucket range and checks that the
// index↔bounds mapping is a bijection with no gaps: every bucket's upper
// edge is the next bucket's lower edge, and every value maps back into
// the bucket whose bounds contain it.
func TestHDRBucketContinuity(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{SigBits: 4, ExactCap: -1})
	n := numBuckets(4)
	var prevEnd time.Duration
	for idx := 0; idx < n; idx++ {
		lo, width := h.bucketBounds(idx)
		if lo != prevEnd {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", idx, lo, prevEnd)
		}
		if width <= 0 {
			t.Fatalf("bucket %d has width %d", idx, width)
		}
		if got := h.bucketIdx(lo); got != idx {
			t.Fatalf("bucketIdx(lo=%d) = %d, want %d", lo, got, idx)
		}
		if got := h.bucketIdx(lo + width - 1); got != idx {
			t.Fatalf("bucketIdx(hi=%d) = %d, want %d", lo+width-1, got, idx)
		}
		prevEnd = lo + width
		if prevEnd < 0 { // wrapped past the int64 range: done
			break
		}
	}
}

// TestHDRRepresentativeError checks the headline accuracy contract: any
// bucket representative is within RelativeError of every value in the
// bucket.
func TestHDRRepresentativeError(t *testing.T) {
	for _, sigBits := range []int{1, 4, 7, 10} {
		h := NewHDRHistogram(HDRConfig{SigBits: sigBits, ExactCap: -1})
		maxErr := h.RelativeError()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			v := time.Duration(rng.Int63n(int64(time.Hour)) + 1)
			rep := h.representative(h.bucketIdx(v))
			relErr := math.Abs(float64(rep-v)) / float64(v)
			if relErr > maxErr {
				t.Fatalf("sigBits=%d v=%d rep=%d: relative error %.5f > %.5f",
					sigBits, v, rep, relErr, maxErr)
			}
		}
	}
}

// TestHDRExactModeMatchesRecorder pins the small-run contract: until
// ExactCap observations the histogram's quantiles equal the exact
// nearest-rank answers bit for bit.
func TestHDRExactModeMatchesRecorder(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{})
	rng := rand.New(rand.NewSource(11))
	var values []time.Duration
	for i := 0; i < 500; i++ {
		v := time.Duration(rng.Int63n(int64(10 * time.Second)))
		values = append(values, v)
		h.Observe(v)
	}
	if !h.Exact() {
		t.Fatal("histogram spilled below ExactCap")
	}
	sorted := append([]time.Duration(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{0, 0.001, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		want := sorted[NearestRank(p, len(sorted))]
		if got := h.Quantile(p); got != want {
			t.Fatalf("Quantile(%v) = %v, want exact %v", p, got, want)
		}
	}
}

// TestHDRQuantileWithinRelativeError is the property test of the bounded
// contract: once spilled, every quantile stays within the configured
// relative error of the exact nearest-rank answer over a seeded workload
// that mixes uniform, exponential-ish and heavy-tail values.
func TestHDRQuantileWithinRelativeError(t *testing.T) {
	for _, sigBits := range []int{5, 7, 9} {
		h := NewHDRHistogram(HDRConfig{SigBits: sigBits, ExactCap: 100})
		rng := rand.New(rand.NewSource(int64(sigBits)))
		var values []time.Duration
		for i := 0; i < 50000; i++ {
			var v time.Duration
			switch i % 3 {
			case 0:
				v = time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
			case 1:
				v = time.Duration(float64(time.Second) * rng.ExpFloat64())
			default: // heavy tail, out to minutes
				v = time.Duration(rng.Int63n(int64(3 * time.Minute)))
			}
			values = append(values, v)
			h.Observe(v)
		}
		if h.Exact() {
			t.Fatal("histogram did not spill past ExactCap")
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		maxErr := h.RelativeError()
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999} {
			exact := values[NearestRank(p, len(values))]
			got := h.Quantile(p)
			relErr := math.Abs(float64(got-exact)) / math.Max(float64(exact), 1)
			if relErr > maxErr {
				t.Errorf("sigBits=%d Quantile(%v) = %v, exact %v: relative error %.6f > %.6f",
					sigBits, p, got, exact, relErr, maxErr)
			}
		}
		// The extremes are exact regardless of bucketing.
		if h.Quantile(0) != values[0] || h.Quantile(1) != values[len(values)-1] {
			t.Errorf("sigBits=%d extremes: Quantile(0)=%v want %v, Quantile(1)=%v want %v",
				sigBits, h.Quantile(0), values[0], h.Quantile(1), values[len(values)-1])
		}
	}
}

// TestHDRMeanSumExact pins that bucketing never degrades sums: the mean
// is the exact mean whatever the retention state.
func TestHDRMeanSumExact(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{ExactCap: 10})
	var sum time.Duration
	for i := 1; i <= 1000; i++ {
		v := time.Duration(i) * 7 * time.Millisecond
		sum += v
		h.Observe(v)
	}
	if h.Exact() {
		t.Fatal("expected spill")
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
	if want := sum / 1000; h.Mean() != want {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
	if h.Min() != 7*time.Millisecond || h.Max() != 7000*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

// TestHDRMergeMatchesCombined checks that merging two shards answers like
// one histogram that saw every value — both when the merge stays exact
// and when it forces a spill.
func TestHDRMergeMatchesCombined(t *testing.T) {
	for _, n := range []int{20, 5000} { // 2×20 stays exact, 2×5000 spills
		cfg := HDRConfig{}
		a, b, all := NewHDRHistogram(cfg), NewHDRHistogram(cfg), NewHDRHistogram(cfg)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < n; i++ {
			va := time.Duration(rng.Int63n(int64(time.Minute)))
			vb := time.Duration(rng.Int63n(int64(time.Minute)))
			a.Observe(va)
			b.Observe(vb)
			all.Observe(va)
			all.Observe(vb)
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("n=%d Merge: %v", n, err)
		}
		if a.Count() != all.Count() || a.Sum() != all.Sum() ||
			a.Min() != all.Min() || a.Max() != all.Max() {
			t.Fatalf("n=%d merged counters diverge from combined", n)
		}
		for _, p := range []float64{0.1, 0.5, 0.99} {
			if got, want := a.Quantile(p), all.Quantile(p); got != want {
				t.Fatalf("n=%d Quantile(%v): merged %v, combined %v", n, p, got, want)
			}
		}
		// b must be untouched by the merge.
		if b.Count() != int64(n) {
			t.Fatalf("n=%d merge mutated its argument", n)
		}
	}
}

// TestHDRMergeConfigMismatch pins the config-compatibility error.
func TestHDRMergeConfigMismatch(t *testing.T) {
	a := NewHDRHistogram(HDRConfig{SigBits: 7})
	b := NewHDRHistogram(HDRConfig{SigBits: 8})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched configs succeeded, want error")
	}
}

// TestHDRMergeCommutesBytes checks the serialization side of shard-order
// independence on a deterministic workload: Merge(a,b) and Merge(b,a)
// produce byte-identical MarshalBinary output (the fuzz test widens this).
func TestHDRMergeCommutesBytes(t *testing.T) {
	build := func() (a, b *HDRHistogram) {
		a, b = NewHDRHistogram(HDRConfig{ExactCap: 64}), NewHDRHistogram(HDRConfig{ExactCap: 64})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 100; i++ { // past 2×ExactCap → merge spills
			a.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			b.Observe(time.Duration(rng.Int63n(int64(time.Hour))))
		}
		return a, b
	}
	a1, b1 := build()
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	a2, b2 := build()
	if err := b2.Merge(a2); err != nil {
		t.Fatal(err)
	}
	ab, err := a1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := b2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, ba) {
		t.Fatal("Merge(a,b) and Merge(b,a) serialize differently")
	}
}

// TestHDRCumulativeCount checks CDF queries in both retention states.
func TestHDRCumulativeCount(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{})
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.CumulativeCount(50 * time.Millisecond); got != 50 {
		t.Fatalf("exact CumulativeCount(50ms) = %d, want 50", got)
	}
	if got := h.CumulativeCount(0); got != 0 {
		t.Fatalf("exact CumulativeCount(0) = %d, want 0", got)
	}
	if got := h.CumulativeCount(time.Hour); got != 100 {
		t.Fatalf("exact CumulativeCount(1h) = %d, want 100", got)
	}

	spilled := NewHDRHistogram(HDRConfig{ExactCap: -1})
	for i := 1; i <= 100; i++ {
		spilled.Observe(time.Duration(i) * time.Millisecond)
	}
	got := spilled.CumulativeCount(50 * time.Millisecond)
	// Bucketed counts may shift by values within RelativeError of the
	// threshold; at sigBits=7 that is under 1% of 50ms, so at most one of
	// the 1ms-spaced values can straddle.
	if got < 49 || got > 51 {
		t.Fatalf("spilled CumulativeCount(50ms) = %d, want 50±1", got)
	}
	if spilled.CumulativeCount(-time.Second) != 0 {
		t.Fatal("negative threshold must count nothing")
	}
}

// TestHDRFootprintConstant pins the constant-memory claim at the
// histogram level: footprint after 10k and 1M observations is identical.
func TestHDRFootprintConstant(t *testing.T) {
	observe := func(n int) int64 {
		h := NewHDRHistogram(HDRConfig{})
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(time.Minute))))
		}
		return h.FootprintBytes()
	}
	small, big := observe(10_000), observe(1_000_000)
	if small != big {
		t.Fatalf("footprint grew with observations: %d bytes at 10k, %d at 1M", small, big)
	}
	if limit := int64(96 * 1024); big > limit {
		t.Fatalf("footprint %d bytes exceeds %d", big, limit)
	}
}

// TestHDRDefaultsAndClamps pins the config normalization.
func TestHDRDefaultsAndClamps(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{})
	if cfg := h.Config(); cfg.SigBits != DefaultHDRSigBits || cfg.ExactCap != DefaultHDRExactCap {
		t.Fatalf("defaults = %+v", cfg)
	}
	if h := NewHDRHistogram(HDRConfig{SigBits: 99}); h.Config().SigBits != maxHDRSigBits {
		t.Fatalf("SigBits not clamped: %+v", h.Config())
	}
	noExact := NewHDRHistogram(HDRConfig{ExactCap: -1})
	if noExact.Exact() {
		t.Fatal("ExactCap<0 must disable exact mode")
	}
	noExact.Observe(-time.Second) // negative clamps to zero, not a panic
	if noExact.Min() != 0 || noExact.Count() != 1 {
		t.Fatalf("negative observation: min=%v count=%d", noExact.Min(), noExact.Count())
	}
	empty := NewHDRHistogram(HDRConfig{})
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.Min() != 0 ||
		empty.Max() != 0 || empty.CumulativeCount(time.Second) != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
}

// TestHDREach checks the ascending-order enumeration contract in both
// states and that a fixed-bin Histogram rebuilt from Each conserves the
// total count.
func TestHDREach(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{ExactCap: 8})
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i%97) * 10 * time.Millisecond)
	}
	var total int64
	prev := time.Duration(-1)
	h.Each(func(v time.Duration, c int64) {
		if v <= prev {
			t.Fatalf("Each not strictly ascending: %v after %v", v, prev)
		}
		prev = v
		total += c
	})
	if total != h.Count() {
		t.Fatalf("Each total = %d, want %d", total, h.Count())
	}
	rebuilt := NewHistogram(100*time.Millisecond, 2*time.Second)
	h.Each(func(v time.Duration, c int64) { rebuilt.ObserveN(v, c) })
	if rebuilt.Total() != h.Count() {
		t.Fatalf("rebuilt histogram total = %d, want %d", rebuilt.Total(), h.Count())
	}
}
