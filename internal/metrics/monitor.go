package metrics

import (
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
)

// DefaultSampleInterval is the paper's collectl sampling period.
const DefaultSampleInterval = 50 * time.Millisecond

// DepthSampler exposes a server's instantaneous queue depth; satisfied by
// server.Server.
type DepthSampler interface {
	Name() string
	Depth() int
}

// Series is a fixed-interval time series of float64 samples. Sample i was
// taken at (i+1) × Interval.
//
// With MaxSamples set, the series is a bounded ring window: whenever the
// stored length would exceed the cap, adjacent pairs are folded into
// their mean and Interval doubles, so arbitrarily long horizons fit in a
// fixed number of stored samples at a deterministically coarsening
// resolution. Set MaxSamples before the first Append.
type Series struct {
	// Interval is the (current) sampling period; it doubles on each fold
	// when MaxSamples bounds the series.
	Interval time.Duration
	// Values holds one sample per interval.
	Values []float64
	// MaxSamples, when positive, bounds len(Values); it is normalized up
	// to an even minimum of 2. Zero keeps the series unbounded (the
	// historical behavior, byte-identical for existing runs).
	MaxSamples int

	// factor is how many raw samples each stored value summarizes
	// (1, 2, 4, ... as folds happen); carrySum/carryN accumulate raw
	// samples of a not-yet-complete window.
	factor   int
	carrySum float64
	carryN   int
}

// sampleCap returns the normalized bound (even, at least 2).
func (s *Series) sampleCap() int {
	c := s.MaxSamples
	if c < 2 {
		c = 2
	}
	if c%2 == 1 {
		c++
	}
	return c
}

// Append adds one raw sample taken at the base sampling period,
// downsampling deterministically when MaxSamples is exceeded.
func (s *Series) Append(v float64) {
	if s.MaxSamples <= 0 {
		s.Values = append(s.Values, v)
		return
	}
	if s.factor == 0 {
		s.factor = 1
	}
	s.carrySum += v
	s.carryN++
	if s.carryN < s.factor {
		return
	}
	s.Values = append(s.Values, s.carrySum/float64(s.carryN))
	s.carrySum, s.carryN = 0, 0
	if len(s.Values) >= s.sampleCap() {
		s.fold()
	}
}

// fold halves the stored resolution: adjacent pairs merge into their
// mean, the interval doubles, and future raw samples aggregate in the
// carry until a full coarser window completes.
func (s *Series) fold() {
	half := len(s.Values) / 2
	for i := 0; i < half; i++ {
		s.Values[i] = (s.Values[2*i] + s.Values[2*i+1]) / 2
	}
	if len(s.Values)%2 == 1 {
		// Defensive: a trailing unpaired value (cap lowered mid-run)
		// folds back into the carry as the raw samples it summarizes.
		s.carrySum += s.Values[len(s.Values)-1] * float64(s.factor)
		s.carryN += s.factor
	}
	s.Values = s.Values[:half]
	s.factor *= 2
	s.Interval *= 2
}

// Factor returns how many base-interval samples each stored value
// currently summarizes (1 while unbounded or before the first fold).
func (s *Series) Factor() int {
	if s.factor == 0 {
		return 1
	}
	return s.factor
}

// At returns the sample nearest to simulated time t (clamped to range), or
// 0 for an empty series.
func (s *Series) At(t time.Duration) float64 {
	if len(s.Values) == 0 || s.Interval <= 0 {
		return 0
	}
	idx := int(t/s.Interval) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.Values) {
		idx = len(s.Values) - 1
	}
	return s.Values[idx]
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average sample, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// MeanOver averages the samples within the simulated-time window
// [from, to).
func (s *Series) MeanOver(from, to time.Duration) float64 {
	if s.Interval <= 0 || len(s.Values) == 0 || to <= from {
		return 0
	}
	lo := int(from / s.Interval)
	hi := int(to / s.Interval)
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// Monitor samples watched servers and VMs at a fixed interval, producing
// the timeline series plotted throughout the paper: per-server queued
// requests, per-VM utilization (run-queue busy fraction) and I/O wait.
type Monitor struct {
	sim        *des.Simulator
	interval   time.Duration
	maxSamples int

	servers []DepthSampler
	vms     []*watchedVM

	queues map[string]*Series
	utils  map[string]*Series
	iowait map[string]*Series

	ticker *des.Ticker
}

type watchedVM struct {
	name string
	vm   *cpu.VM
	prev cpu.Usage
}

// NewMonitor creates a monitor sampling at the given interval (zero means
// DefaultSampleInterval). Call Start after registering watches.
func NewMonitor(sim *des.Simulator, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Monitor{
		sim:      sim,
		interval: interval,
		queues:   make(map[string]*Series),
		utils:    make(map[string]*Series),
		iowait:   make(map[string]*Series),
	}
}

// Interval returns the sampling period.
func (m *Monitor) Interval() time.Duration { return m.interval }

// LimitSamples bounds every watched series (existing and future) to at
// most n stored samples via deterministic ring-window downsampling; call
// it before Start. Zero or negative keeps series unbounded.
func (m *Monitor) LimitSamples(n int) {
	if n < 0 {
		n = 0
	}
	m.maxSamples = n
	for _, s := range m.queues {
		s.MaxSamples = n
	}
	for _, s := range m.utils {
		s.MaxSamples = n
	}
	for _, s := range m.iowait {
		s.MaxSamples = n
	}
}

// newSeries creates a series honoring the monitor's sample bound.
func (m *Monitor) newSeries() *Series {
	return &Series{Interval: m.interval, MaxSamples: m.maxSamples}
}

// WatchServer samples s.Depth() every interval into the queue series named
// after the server.
func (m *Monitor) WatchServer(s DepthSampler) {
	m.servers = append(m.servers, s)
	m.queues[s.Name()] = m.newSeries()
}

// WatchVM samples the VM's utilization and I/O wait fractions every
// interval.
func (m *Monitor) WatchVM(name string, vm *cpu.VM) {
	m.vms = append(m.vms, &watchedVM{name: name, vm: vm, prev: vm.Usage()})
	m.utils[name] = m.newSeries()
	m.iowait[name] = m.newSeries()
}

// SetUtil installs a pre-built utilization series under the given name,
// e.g. one imported from an external monitoring log for offline analysis.
func (m *Monitor) SetUtil(name string, s *Series) { m.utils[name] = s }

// SetIOWait installs a pre-built I/O-wait series under the given name.
func (m *Monitor) SetIOWait(name string, s *Series) { m.iowait[name] = s }

// Start begins sampling.
func (m *Monitor) Start() {
	if m.ticker != nil {
		return
	}
	m.ticker = des.NewTicker(m.sim, m.interval, func(time.Duration) { m.sample() })
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Queue returns the queued-requests series for a watched server.
func (m *Monitor) Queue(name string) *Series { return m.queues[name] }

// Util returns the utilization series (0..1) for a watched VM: the
// fraction of each window the VM had runnable work — the quantity the
// paper's CPU timelines plot, where a saturated VM is pinned at 100%.
func (m *Monitor) Util(name string) *Series { return m.utils[name] }

// IOWait returns the I/O-wait series (0..1) for a watched VM.
func (m *Monitor) IOWait(name string) *Series { return m.iowait[name] }

func (m *Monitor) sample() {
	for _, s := range m.servers {
		m.queues[s.Name()].Append(float64(s.Depth()))
	}
	secs := m.interval.Seconds()
	for _, w := range m.vms {
		u := w.vm.Usage()
		util := (u.Runnable - w.prev.Runnable).Seconds() / secs
		wait := (u.Blocked - w.prev.Blocked).Seconds() / secs
		w.prev = u
		m.utils[w.name].Append(clamp01(util))
		m.iowait[w.name].Append(clamp01(wait))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
