package metrics

import (
	"time"

	"ctqosim/internal/cpu"
	"ctqosim/internal/des"
)

// DefaultSampleInterval is the paper's collectl sampling period.
const DefaultSampleInterval = 50 * time.Millisecond

// DepthSampler exposes a server's instantaneous queue depth; satisfied by
// server.Server.
type DepthSampler interface {
	Name() string
	Depth() int
}

// Series is a fixed-interval time series of float64 samples. Sample i was
// taken at (i+1) × Interval.
type Series struct {
	// Interval is the sampling period.
	Interval time.Duration
	// Values holds one sample per interval.
	Values []float64
}

// At returns the sample nearest to simulated time t (clamped to range), or
// 0 for an empty series.
func (s *Series) At(t time.Duration) float64 {
	if len(s.Values) == 0 || s.Interval <= 0 {
		return 0
	}
	idx := int(t/s.Interval) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.Values) {
		idx = len(s.Values) - 1
	}
	return s.Values[idx]
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average sample, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// MeanOver averages the samples within the simulated-time window
// [from, to).
func (s *Series) MeanOver(from, to time.Duration) float64 {
	if s.Interval <= 0 || len(s.Values) == 0 || to <= from {
		return 0
	}
	lo := int(from / s.Interval)
	hi := int(to / s.Interval)
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// Monitor samples watched servers and VMs at a fixed interval, producing
// the timeline series plotted throughout the paper: per-server queued
// requests, per-VM utilization (run-queue busy fraction) and I/O wait.
type Monitor struct {
	sim      *des.Simulator
	interval time.Duration

	servers []DepthSampler
	vms     []*watchedVM

	queues map[string]*Series
	utils  map[string]*Series
	iowait map[string]*Series

	ticker *des.Ticker
}

type watchedVM struct {
	name string
	vm   *cpu.VM
	prev cpu.Usage
}

// NewMonitor creates a monitor sampling at the given interval (zero means
// DefaultSampleInterval). Call Start after registering watches.
func NewMonitor(sim *des.Simulator, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Monitor{
		sim:      sim,
		interval: interval,
		queues:   make(map[string]*Series),
		utils:    make(map[string]*Series),
		iowait:   make(map[string]*Series),
	}
}

// Interval returns the sampling period.
func (m *Monitor) Interval() time.Duration { return m.interval }

// WatchServer samples s.Depth() every interval into the queue series named
// after the server.
func (m *Monitor) WatchServer(s DepthSampler) {
	m.servers = append(m.servers, s)
	m.queues[s.Name()] = &Series{Interval: m.interval}
}

// WatchVM samples the VM's utilization and I/O wait fractions every
// interval.
func (m *Monitor) WatchVM(name string, vm *cpu.VM) {
	m.vms = append(m.vms, &watchedVM{name: name, vm: vm, prev: vm.Usage()})
	m.utils[name] = &Series{Interval: m.interval}
	m.iowait[name] = &Series{Interval: m.interval}
}

// SetUtil installs a pre-built utilization series under the given name,
// e.g. one imported from an external monitoring log for offline analysis.
func (m *Monitor) SetUtil(name string, s *Series) { m.utils[name] = s }

// SetIOWait installs a pre-built I/O-wait series under the given name.
func (m *Monitor) SetIOWait(name string, s *Series) { m.iowait[name] = s }

// Start begins sampling.
func (m *Monitor) Start() {
	if m.ticker != nil {
		return
	}
	m.ticker = des.NewTicker(m.sim, m.interval, func(time.Duration) { m.sample() })
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Queue returns the queued-requests series for a watched server.
func (m *Monitor) Queue(name string) *Series { return m.queues[name] }

// Util returns the utilization series (0..1) for a watched VM: the
// fraction of each window the VM had runnable work — the quantity the
// paper's CPU timelines plot, where a saturated VM is pinned at 100%.
func (m *Monitor) Util(name string) *Series { return m.utils[name] }

// IOWait returns the I/O-wait series (0..1) for a watched VM.
func (m *Monitor) IOWait(name string) *Series { return m.iowait[name] }

func (m *Monitor) sample() {
	for _, s := range m.servers {
		series := m.queues[s.Name()]
		series.Values = append(series.Values, float64(s.Depth()))
	}
	secs := m.interval.Seconds()
	for _, w := range m.vms {
		u := w.vm.Usage()
		util := (u.Runnable - w.prev.Runnable).Seconds() / secs
		wait := (u.Blocked - w.prev.Blocked).Seconds() / secs
		w.prev = u
		m.utils[w.name].Values = append(m.utils[w.name].Values, clamp01(util))
		m.iowait[w.name].Values = append(m.iowait[w.name].Values, clamp01(wait))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
