package metrics

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"time"
)

// Default HDR histogram knobs. Seven significant bits keep every bucket
// representative within 2^-8 ≈ 0.4% of any value in the bucket while the
// whole dense count array stays under 60 KB — constant whatever the
// request count.
const (
	// DefaultHDRSigBits is the default precision (linear sub-buckets per
	// power of two = 2^sigBits).
	DefaultHDRSigBits = 7
	// DefaultHDRExactCap is the default exact small-run mode capacity:
	// up to this many raw values are retained verbatim, so short runs
	// report exact nearest-rank quantiles.
	DefaultHDRExactCap = 1024

	// maxHDRSigBits bounds the precision knob; beyond ~14 bits the dense
	// array stops being "small" and the knob stops being meaningful.
	maxHDRSigBits = 14
)

// HDRConfig tunes an HDRHistogram.
type HDRConfig struct {
	// SigBits is the number of significant bits: each power-of-two range
	// is split into 2^SigBits linear sub-buckets, bounding the relative
	// error of any representative at 2^-(SigBits+1). Zero defaults to
	// DefaultHDRSigBits.
	SigBits int
	// ExactCap is the exact small-run capacity: histograms retain up to
	// this many raw values and answer exactly; the ExactCap+1-th
	// observation spills them into buckets. Zero defaults to
	// DefaultHDRExactCap; negative disables exact mode entirely.
	ExactCap int
}

// WithDefaults returns the resolved configuration: zero fields replaced
// by the defaults, out-of-range ones clamped — what a histogram built
// from c will actually use (and what the effective-config JSON echoes).
func (c HDRConfig) WithDefaults() HDRConfig { return c.withDefaults() }

func (c HDRConfig) withDefaults() HDRConfig {
	if c.SigBits <= 0 {
		c.SigBits = DefaultHDRSigBits
	}
	if c.SigBits > maxHDRSigBits {
		c.SigBits = maxHDRSigBits
	}
	if c.ExactCap == 0 {
		c.ExactCap = DefaultHDRExactCap
	}
	if c.ExactCap < 0 {
		c.ExactCap = 0
	}
	return c
}

// HDRHistogram is a mergeable log-linear latency histogram: durations are
// bucketed by (power-of-two group, linear sub-bucket), so memory is a
// fixed ~(64-sigBits)×2^sigBits counters regardless of how many values
// are observed, and any bucket representative is within a relative error
// of 2^-(sigBits+1) of every value in the bucket. Small runs stay exact:
// until ExactCap observations the raw values are retained and quantiles
// use the same nearest-rank rule as Recorder.Percentile.
//
// Merging adds bucket counts (after spilling any exact side that no
// longer fits), so shard-order merges are associative the same way the
// sweep accumulators are; MarshalBinary sorts exact values, making
// Merge(a,b) and Merge(b,a) serialize byte-identically.
type HDRHistogram struct {
	cfg    HDRConfig
	counts []int64
	// exact holds the raw values of a small run, in observation order;
	// nil once spilled (or when ExactCap is 0).
	exact   []time.Duration
	spilled bool

	count    int64
	sum      int64 // nanoseconds; exact at any realistic scale
	min, max time.Duration
}

// NewHDRHistogram creates an empty histogram with the given config
// (zero-value config takes the defaults).
func NewHDRHistogram(cfg HDRConfig) *HDRHistogram {
	cfg = cfg.withDefaults()
	h := &HDRHistogram{cfg: cfg}
	if cfg.ExactCap == 0 {
		h.spill()
	}
	return h
}

// Config returns the resolved configuration.
func (h *HDRHistogram) Config() HDRConfig { return h.cfg }

// RelativeError returns the worst-case relative error of any bucketed
// representative: 2^-(SigBits+1). Exact-mode answers have zero error.
func (h *HDRHistogram) RelativeError() float64 {
	return 1 / float64(uint64(2)<<uint(h.cfg.SigBits))
}

// numBuckets returns the dense array size: 2^sigBits unit buckets plus
// one 2^sigBits-wide group per remaining power of two of the int64 range.
func numBuckets(sigBits int) int {
	return (63 - sigBits + 1) << uint(sigBits)
}

// bucketIdx maps a non-negative duration to its bucket.
//
//lint:hotpath
func (h *HDRHistogram) bucketIdx(d time.Duration) int {
	v := uint64(d)
	b := uint(h.cfg.SigBits)
	if v < 1<<b {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	shift := uint(msb) - b
	// Groups are laid out contiguously: group s (values needing s extra
	// bits) occupies [s*2^b + 2^b, s*2^b + 2^(b+1)).
	return int(shift)<<b + int(v>>shift)
}

// bucketBounds returns the [lo, lo+width) value range of bucket idx.
func (h *HDRHistogram) bucketBounds(idx int) (lo time.Duration, width time.Duration) {
	b := uint(h.cfg.SigBits)
	if idx < 1<<b {
		return time.Duration(idx), 1
	}
	// Undo the layout above: group s holds idx = s*2^b + (v >> s) with
	// v>>s in [2^b, 2^(b+1)), i.e. idx in [(s+1)*2^b, (s+2)*2^b).
	s := uint(idx>>b) - 1
	sub := idx - int(s)<<int(b)
	return time.Duration(uint64(sub) << s), time.Duration(uint64(1) << s)
}

// representative returns the deterministic stand-in value reported for
// every sample in bucket idx: the bucket midpoint (exact for unit-wide
// buckets).
func (h *HDRHistogram) representative(idx int) time.Duration {
	lo, width := h.bucketBounds(idx)
	return lo + width/2
}

// Observe adds one duration (negative values clamp to zero).
//
//lint:hotpath HDR record path
func (h *HDRHistogram) Observe(d time.Duration) { h.ObserveN(d, 1) }

// ObserveN adds n copies of a duration. Once spilled (the steady state of
// any long run) recording is a handful of integer ops into the dense
// count array and never allocates.
//
//lint:hotpath HDR record path
func (h *HDRHistogram) ObserveN(d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count += n
	h.sum += int64(d) * n
	if !h.spilled {
		if len(h.exact)+int(n) <= h.cfg.ExactCap {
			for i := int64(0); i < n; i++ {
				h.exact = append(h.exact, d) //lint:allow allocs exact small-run mode, bounded by ExactCap; spills once
			}
			return
		}
		h.spill()
	}
	h.counts[h.bucketIdx(d)] += n
}

// spill moves the exact values into buckets and switches the histogram
// to bounded mode permanently.
func (h *HDRHistogram) spill() {
	if h.spilled {
		return
	}
	h.counts = make([]int64, numBuckets(h.cfg.SigBits)) //lint:allow allocs one-time spill to the fixed dense array
	for _, v := range h.exact {
		h.counts[h.bucketIdx(v)]++
	}
	h.exact = nil
	h.spilled = true
}

// Exact reports whether the histogram still answers exactly (small-run
// mode, no value bucketed yet).
func (h *HDRHistogram) Exact() bool { return !h.spilled }

// Count returns the number of observed values.
func (h *HDRHistogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observed values.
func (h *HDRHistogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the exact mean (bucketing never degrades sums).
func (h *HDRHistogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min returns the exact smallest observed value.
func (h *HDRHistogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observed value.
func (h *HDRHistogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the p-quantile (nearest-rank, matching
// Recorder.Percentile): exact in small-run mode, within RelativeError
// once spilled. p<=0 returns the exact min, p>=1 the exact max.
func (h *HDRHistogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	if !h.spilled {
		sorted := h.sortedExact()
		return sorted[NearestRank(p, len(sorted))]
	}
	rank := int64(NearestRank(p, int(h.count)))
	var cum int64
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			return clampDuration(h.representative(idx), h.min, h.max)
		}
	}
	return h.max
}

// CumulativeCount returns how many observed values are <= d: exact in
// small-run mode; once spilled, buckets entirely at or below d count in
// full and a straddling bucket counts if its representative is <= d, so
// the answer is exact up to values within RelativeError of d.
func (h *HDRHistogram) CumulativeCount(d time.Duration) int64 {
	if h.count == 0 {
		return 0
	}
	if !h.spilled {
		sorted := h.sortedExact()
		return int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > d }))
	}
	if d < 0 {
		return 0
	}
	var cum int64
	limit := h.bucketIdx(d)
	for idx := 0; idx <= limit && idx < len(h.counts); idx++ {
		c := h.counts[idx]
		if c == 0 {
			continue
		}
		if idx == limit && h.representative(idx) > d {
			break
		}
		cum += c
	}
	return cum
}

// Each calls fn once per distinct retained value in ascending order: the
// sorted raw values in small-run mode, the bucket representatives with
// their counts once spilled. Reconstructing a fixed-bin Histogram from
// Each keeps every count within RelativeError of its true bin.
func (h *HDRHistogram) Each(fn func(value time.Duration, count int64)) {
	if !h.spilled {
		sorted := h.sortedExact()
		for i := 0; i < len(sorted); {
			j := i
			for j < len(sorted) && sorted[j] == sorted[i] {
				j++
			}
			fn(sorted[i], int64(j-i))
			i = j
		}
		return
	}
	for idx, c := range h.counts {
		if c > 0 {
			fn(h.representative(idx), c)
		}
	}
}

// sortedExact returns the exact values in ascending order without
// mutating the observation-order slice.
func (h *HDRHistogram) sortedExact() []time.Duration {
	sorted := make([]time.Duration, len(h.exact))
	copy(sorted, h.exact)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// Merge folds o into h (o is left untouched). Histograms must share a
// config; merging is count addition once either side is bucketed, so
// shard-order merging reproduces byte-identical reports for any worker
// count, like the sweep accumulators.
func (h *HDRHistogram) Merge(o *HDRHistogram) error {
	if h.cfg != o.cfg {
		return fmt.Errorf("metrics: merge HDR config mismatch: %+v vs %+v", h.cfg, o.cfg)
	}
	if o.count == 0 {
		return nil
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	if !h.spilled && !o.spilled && len(h.exact)+len(o.exact) <= h.cfg.ExactCap {
		h.exact = append(h.exact, o.exact...)
		return nil
	}
	h.spill()
	if !o.spilled {
		for _, v := range o.exact {
			h.counts[h.bucketIdx(v)]++
		}
		return nil
	}
	for idx, c := range o.counts {
		h.counts[idx] += c
	}
	return nil
}

// MarshalBinary serializes the histogram deterministically: exact values
// are sorted and bucket counts are emitted as ordered (index, count)
// pairs, so two histograms holding the same distribution serialize to the
// same bytes regardless of observation or merge order.
func (h *HDRHistogram) MarshalBinary() ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint16(out, uint16(h.cfg.SigBits))
	out = binary.BigEndian.AppendUint32(out, uint32(h.cfg.ExactCap))
	out = binary.BigEndian.AppendUint64(out, uint64(h.count))
	out = binary.BigEndian.AppendUint64(out, uint64(h.sum))
	out = binary.BigEndian.AppendUint64(out, uint64(h.min))
	out = binary.BigEndian.AppendUint64(out, uint64(h.max))
	if !h.spilled {
		out = append(out, 0) // exact-mode tag
		out = binary.BigEndian.AppendUint32(out, uint32(len(h.exact)))
		for _, v := range h.sortedExact() {
			out = binary.BigEndian.AppendUint64(out, uint64(v))
		}
		return out, nil
	}
	out = append(out, 1) // bucketed-mode tag
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		out = binary.BigEndian.AppendUint32(out, uint32(idx))
		out = binary.BigEndian.AppendUint64(out, uint64(c))
	}
	return out, nil
}

// FootprintBytes returns a deterministic accounting of the histogram's
// retained memory: the dense count array plus any exact values. It
// depends only on the config once spilled — never on the request count.
func (h *HDRHistogram) FootprintBytes() int64 {
	return int64(cap(h.counts))*8 + int64(cap(h.exact))*8
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
