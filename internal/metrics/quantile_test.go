package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestP2RejectsBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Fatalf("p=%v accepted", p)
		}
	}
}

func TestP2Empty(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Value() != 0 || q.Count() != 0 {
		t.Fatal("empty estimator should be zero")
	}
}

func TestP2SmallSampleExact(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	q.Observe(3)
	q.Observe(1)
	q.Observe(2)
	// Median of {1,2,3} = 2, computed exactly below 5 samples.
	if got := q.Value(); got != 2 {
		t.Fatalf("median of 3 samples = %v, want 2", got)
	}
}

func TestP2MedianUniform(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		q.Observe(rng.Float64())
	}
	if got := q.Value(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("median estimate = %v, want ~0.5", got)
	}
}

func TestP2P99Exponential(t *testing.T) {
	q, err := NewP2Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	exact := make([]float64, 0, 200000)
	for i := 0; i < 200000; i++ {
		x := rng.ExpFloat64()
		q.Observe(x)
		exact = append(exact, x)
	}
	sort.Float64s(exact)
	want := exact[int(0.99*float64(len(exact)))]
	if math.Abs(q.Value()-want)/want > 0.05 {
		t.Fatalf("p99 estimate = %v, exact %v", q.Value(), want)
	}
}

func TestP2Durations(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 999; i++ {
		q.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	got := q.ValueDuration()
	if got < 450*time.Millisecond || got > 550*time.Millisecond {
		t.Fatalf("median duration = %v, want ~500ms", got)
	}
	if q.Count() != 999 {
		t.Fatalf("count = %d", q.Count())
	}
}

func TestP2BimodalStream(t *testing.T) {
	// The CTQO latency shape: 99% fast (~2ms), 1% at ~3s. The p99.9 must
	// land in the slow mode.
	q, err := NewP2Quantile(0.999)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300000; i++ {
		if rng.Float64() < 0.01 {
			q.Observe(3.0 + rng.Float64()*0.2)
		} else {
			q.Observe(0.002 + rng.Float64()*0.001)
		}
	}
	if got := q.Value(); got < 2.5 {
		t.Fatalf("p99.9 of bimodal stream = %v, want in the 3s mode", got)
	}
}

// Property: against a random stream, the P² estimate of the median stays
// within the central region of the exact distribution, and the estimator
// never leaves the observed range.
func TestPropertyP2WithinRange(t *testing.T) {
	f := func(seed int64) bool {
		q, err := NewP2Quantile(0.5)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		minV, maxV := math.Inf(1), math.Inf(-1)
		for i := 0; i < 2000; i++ {
			x := rng.NormFloat64()*10 + 50
			minV = math.Min(minV, x)
			maxV = math.Max(maxV, x)
			q.Observe(x)
		}
		v := q.Value()
		if v < minV || v > maxV {
			return false
		}
		// For N(50,10) the median estimate should land near 50.
		return math.Abs(v-50) < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
