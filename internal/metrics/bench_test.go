package metrics

import (
	"testing"
	"time"

	"ctqosim/internal/workload"
)

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(100*time.Millisecond, 10*time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%12000) * time.Millisecond)
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder()
	req := &workload.Request{Submitted: time.Second, Completed: 2 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(req)
	}
}

func BenchmarkP2Observe(b *testing.B) {
	q, err := NewP2Quantile(0.99)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Observe(float64(i % 997))
	}
}
