package metrics

import (
	"math"
	"testing"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/workload"
)

// boundedPair records the same request stream into an exact and a bounded
// recorder.
func boundedPair(window time.Duration) (exact, bounded *Recorder) {
	exact = NewRecorder()
	bounded = NewRecorder()
	bounded.Retention = RetainBounded
	bounded.SeriesWindow = window
	return exact, bounded
}

// TestBoundedRecorderMatchesExactSmallRun pins the small-run contract of
// bounded mode: while the HDR histograms stay under ExactCap, every
// recorder statistic is identical to the exact path.
func TestBoundedRecorderMatchesExactSmallRun(t *testing.T) {
	exact, bounded := boundedPair(50 * time.Millisecond)
	reqs := []*workload.Request{
		req(10*time.Millisecond, 110*time.Millisecond),
		req(20*time.Millisecond, 4*time.Second, "apache"), // VLRT
		req(60*time.Millisecond, 80*time.Millisecond),
		req(120*time.Millisecond, 9*time.Second, "tomcat"), // VLRT
		{Submitted: 130 * time.Millisecond, Completed: 150 * time.Millisecond, Failed: true,
			Class: workload.Class{Name: "Static"}},
		{Submitted: 140 * time.Millisecond, Completed: 400 * time.Millisecond,
			Class: workload.Class{Name: "ViewStory"}},
	}
	for _, rq := range reqs {
		exact.Record(rq)
		bounded.Record(rq)
	}

	if exact.Len() != bounded.Len() {
		t.Fatalf("Len: exact %d, bounded %d", exact.Len(), bounded.Len())
	}
	if exact.Mean() != bounded.Mean() {
		t.Fatalf("Mean: exact %v, bounded %v", exact.Mean(), bounded.Mean())
	}
	if exact.VLRTCount() != bounded.VLRTCount() {
		t.Fatalf("VLRTCount: exact %d, bounded %d", exact.VLRTCount(), bounded.VLRTCount())
	}
	if exact.FailedCount() != bounded.FailedCount() {
		t.Fatalf("FailedCount: exact %d, bounded %d", exact.FailedCount(), bounded.FailedCount())
	}
	if exact.Throughput(time.Second) != bounded.Throughput(time.Second) {
		t.Fatal("Throughput diverges")
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if e, b := exact.Percentile(p), bounded.Percentile(p); e != b {
			t.Fatalf("Percentile(%v): exact %v, bounded %v", p, e, b)
		}
	}

	eDrops, bDrops := exact.DropsByServer(), bounded.DropsByServer()
	if len(eDrops) != len(bDrops) {
		t.Fatalf("DropsByServer: exact %v, bounded %v", eDrops, bDrops)
	}
	for i := range eDrops {
		if eDrops[i] != bDrops[i] {
			t.Fatalf("DropsByServer[%d]: exact %v, bounded %v", i, eDrops[i], bDrops[i])
		}
	}

	eSeries := exact.VLRTSeries(50*time.Millisecond, time.Second, "")
	bSeries := bounded.VLRTSeries(50*time.Millisecond, time.Second, "")
	if len(eSeries) != len(bSeries) {
		t.Fatalf("VLRTSeries length: exact %d, bounded %d", len(eSeries), len(bSeries))
	}
	for i := range eSeries {
		if eSeries[i] != bSeries[i] {
			t.Fatalf("VLRTSeries[%d]: exact %d, bounded %d", i, eSeries[i], bSeries[i])
		}
	}
	eApache := exact.VLRTSeries(50*time.Millisecond, time.Second, "apache")
	bApache := bounded.VLRTSeries(50*time.Millisecond, time.Second, "apache")
	for i := range eApache {
		if eApache[i] != bApache[i] {
			t.Fatalf("apache VLRTSeries[%d]: exact %d, bounded %d", i, eApache[i], bApache[i])
		}
	}

	eClasses, bClasses := exact.ByClass(), bounded.ByClass()
	if len(eClasses) != len(bClasses) {
		t.Fatalf("ByClass: exact %v, bounded %v", eClasses, bClasses)
	}
	for i := range eClasses {
		if eClasses[i] != bClasses[i] {
			t.Fatalf("ByClass[%d]: exact %+v, bounded %+v", i, eClasses[i], bClasses[i])
		}
	}

	thresholds := []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 5 * time.Second}
	eCDF, bCDF := exact.CDF(thresholds), bounded.CDF(thresholds)
	for i := range eCDF {
		if eCDF[i] != bCDF[i] {
			t.Fatalf("CDF[%d]: exact %+v, bounded %+v", i, eCDF[i], bCDF[i])
		}
	}

	eHist := exact.Histogram(100*time.Millisecond, 10*time.Second)
	bHist := bounded.Histogram(100*time.Millisecond, 10*time.Second)
	for i := 0; i <= eHist.Bins(); i++ {
		if eHist.Count(i) != bHist.Count(i) {
			t.Fatalf("Histogram bin %d: exact %d, bounded %d", i, eHist.Count(i), bHist.Count(i))
		}
	}

	// Bounded mode does not retain requests.
	if bounded.Requests() != nil || bounded.ResponseTimes() != nil {
		t.Fatal("bounded recorder retained requests")
	}
}

// TestBoundedRecorderLargeRunAccuracy spills past ExactCap and checks the
// degradation contract: counters stay exact, percentiles stay within the
// histogram's relative error.
func TestBoundedRecorderLargeRunAccuracy(t *testing.T) {
	exact, bounded := boundedPair(0)
	for i := 0; i < 20000; i++ {
		rt := time.Duration((i*7919)%10000) * time.Millisecond // 0..10s spread
		rq := req(time.Duration(i)*time.Millisecond, time.Duration(i)*time.Millisecond+rt)
		exact.Record(rq)
		bounded.Record(rq)
	}
	if exact.Len() != bounded.Len() || exact.Mean() != bounded.Mean() ||
		exact.VLRTCount() != bounded.VLRTCount() {
		t.Fatal("exact counters diverge in bounded mode")
	}
	maxErr := NewHDRHistogram(HDRConfig{}).RelativeError()
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		e, b := exact.Percentile(p), bounded.Percentile(p)
		relErr := math.Abs(float64(b-e)) / float64(e)
		if relErr > maxErr {
			t.Fatalf("Percentile(%v): exact %v, bounded %v — error %.5f > %.5f",
				p, e, b, relErr, maxErr)
		}
	}
}

// TestBoundedTelemetryFlatMemory is the acceptance test of the tentpole:
// over the same simulated horizon, a bounded recorder's telemetry bytes
// after 1M requests equal its bytes after 100k — memory is O(1) in the
// request count. One request struct is reused throughout so the test
// itself stays cheap.
func TestBoundedTelemetryFlatMemory(t *testing.T) {
	const horizon = 60 * time.Second
	footprint := func(n int) int64 {
		r := NewRecorder()
		r.Retention = RetainBounded
		r.SeriesWindow = 50 * time.Millisecond
		rq := &workload.Request{Class: workload.Class{Name: "ViewStory"}}
		for i := 0; i < n; i++ {
			// Submissions cycle over the full horizon; every 1000th request
			// is a VLRT with a drop so the windowed series and drop counters
			// see traffic too.
			rq.Submitted = time.Duration(i%1000) * (horizon / 1000)
			rq.Completed = rq.Submitted + 100*time.Millisecond
			rq.Drops = nil
			rq.Failed = false
			if i%1000 == 999 {
				rq.Completed = rq.Submitted + 5*time.Second
				rq.Drops = []string{"apache"}
			}
			r.Record(rq)
		}
		if r.Len() != n {
			t.Fatalf("Len = %d, want %d", r.Len(), n)
		}
		return r.MemoryFootprint()
	}
	small, big := footprint(100_000), footprint(1_000_000)
	if small != big {
		t.Fatalf("telemetry grew with request count: %d bytes at 100k, %d bytes at 1M",
			small, big)
	}
	if limit := int64(256 * 1024); big > limit {
		t.Fatalf("bounded telemetry footprint %d bytes exceeds %d", big, limit)
	}
	// The exact path, by contrast, must grow: that is what bounded mode buys.
	exact := NewRecorder()
	for i := 0; i < 1000; i++ {
		exact.Record(req(0, time.Millisecond))
	}
	if exact.MemoryFootprint() <= 0 || exact.MemoryFootprint() < 1000*8 {
		t.Fatalf("exact footprint accounting suspicious: %d", exact.MemoryFootprint())
	}
}

// TestBoundedVLRTSeriesWindowMismatch pins that bounded mode only answers
// for the retained window width.
func TestBoundedVLRTSeriesWindowMismatch(t *testing.T) {
	_, bounded := boundedPair(50 * time.Millisecond)
	bounded.Record(req(10*time.Millisecond, 4*time.Second))
	if got := bounded.VLRTSeries(100*time.Millisecond, time.Second, ""); got != nil {
		t.Fatalf("mismatched window returned %v, want nil", got)
	}
	if got := bounded.VLRTSeries(50*time.Millisecond, time.Second, ""); got == nil {
		t.Fatal("matching window returned nil")
	}
}

// TestSeriesRingWindowFold walks the deterministic downsampling ladder:
// cap 4 at 50ms folds into 2 samples at 100ms, then again at 200ms, with
// every stored value the exact mean of the raw samples it summarizes.
func TestSeriesRingWindowFold(t *testing.T) {
	s := &Series{Interval: 50 * time.Millisecond, MaxSamples: 4}
	for i := 1; i <= 4; i++ {
		s.Append(float64(i))
	}
	// len hit the cap → fold to pair means at doubled interval.
	if len(s.Values) != 2 || s.Values[0] != 1.5 || s.Values[1] != 3.5 {
		t.Fatalf("after first fold: %v", s.Values)
	}
	if s.Interval != 100*time.Millisecond || s.Factor() != 2 {
		t.Fatalf("after first fold: interval %v factor %d", s.Interval, s.Factor())
	}
	for i := 5; i <= 8; i++ {
		s.Append(float64(i))
	}
	if len(s.Values) != 2 || s.Values[0] != 2.5 || s.Values[1] != 6.5 {
		t.Fatalf("after second fold: %v", s.Values)
	}
	if s.Interval != 200*time.Millisecond || s.Factor() != 4 {
		t.Fatalf("after second fold: interval %v factor %d", s.Interval, s.Factor())
	}
	// A partial coarse window stays in the carry, not in Values.
	s.Append(9)
	if len(s.Values) != 2 {
		t.Fatalf("partial window leaked into Values: %v", s.Values)
	}
}

// TestSeriesRingWindowLongRun checks the bound holds over a long horizon
// and that the windowed means conserve the overall mean exactly when the
// sample count is a multiple of the fold factor.
func TestSeriesRingWindowLongRun(t *testing.T) {
	s := &Series{Interval: 50 * time.Millisecond, MaxSamples: 8}
	const n = 4096
	sum := 0.0
	for i := 0; i < n; i++ {
		v := float64(i % 17)
		sum += v
		s.Append(v)
	}
	if len(s.Values) > 8 {
		t.Fatalf("ring window exceeded cap: %d stored", len(s.Values))
	}
	if got := s.Interval * time.Duration(len(s.Values)); got < 50*time.Millisecond*n/2 {
		t.Fatalf("coarsened span %v does not cover the horizon", got)
	}
	// n is a power of two, so every stored value summarizes exactly factor
	// raw samples and the mean of stored values equals the raw mean.
	if got, want := s.Mean(), sum/n; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean after folds = %v, want %v", got, want)
	}
}

// TestSeriesUnboundedUnchanged pins the default path: MaxSamples 0 keeps
// plain appends — the byte-identity contract for existing runs.
func TestSeriesUnboundedUnchanged(t *testing.T) {
	s := &Series{Interval: 50 * time.Millisecond}
	for i := 0; i < 100; i++ {
		s.Append(float64(i))
	}
	if len(s.Values) != 100 || s.Factor() != 1 || s.Interval != 50*time.Millisecond {
		t.Fatalf("unbounded series changed: len %d factor %d interval %v",
			len(s.Values), s.Factor(), s.Interval)
	}
}

// TestSeriesCapNormalization pins the odd/small cap handling: caps below
// 2 and odd caps normalize up to the next even bound.
func TestSeriesCapNormalization(t *testing.T) {
	one := &Series{Interval: time.Millisecond, MaxSamples: 1} // behaves as 2
	one.Append(1)
	one.Append(3)
	if len(one.Values) != 1 || one.Values[0] != 2 {
		t.Fatalf("cap 1: %v", one.Values)
	}
	odd := &Series{Interval: time.Millisecond, MaxSamples: 3} // behaves as 4
	for i := 1; i <= 4; i++ {
		odd.Append(float64(i))
	}
	if len(odd.Values) != 2 || odd.Values[0] != 1.5 || odd.Values[1] != 3.5 {
		t.Fatalf("cap 3: %v", odd.Values)
	}
}

// TestSeriesAtEdgeCases is the table-driven horizon-boundary guard for
// At: queries at zero, mid-window, exactly on a boundary, past the
// horizon and on degenerate series must clamp instead of indexing out of
// range.
func TestSeriesAtEdgeCases(t *testing.T) {
	base := &Series{Interval: 50 * time.Millisecond, Values: []float64{10, 20, 30, 40}}
	folded := &Series{Interval: 100 * time.Millisecond, Values: []float64{15, 35},
		MaxSamples: 2, factor: 2}
	tests := []struct {
		name string
		s    *Series
		t    time.Duration
		want float64
	}{
		{"zero time clamps to first", base, 0, 10},
		{"negative time clamps to first", base, -time.Second, 10},
		{"first sample boundary", base, 50 * time.Millisecond, 10},
		{"mid series", base, 100 * time.Millisecond, 20},
		{"sample boundary rounds down", base, 149 * time.Millisecond, 20},
		{"exact horizon", base, 200 * time.Millisecond, 40},
		{"past horizon clamps to last", base, time.Hour, 40},
		{"folded series uses coarsened interval", folded, 100 * time.Millisecond, 15},
		{"folded series horizon", folded, 200 * time.Millisecond, 35},
		{"folded past horizon", folded, time.Minute, 35},
		{"empty series", &Series{Interval: time.Millisecond}, time.Second, 0},
		{"zero interval", &Series{Values: []float64{5}}, time.Second, 0},
	}
	for _, tt := range tests {
		if got := tt.s.At(tt.t); got != tt.want {
			t.Errorf("%s: At(%v) = %v, want %v", tt.name, tt.t, got, tt.want)
		}
	}
}

// TestMonitorLimitSamples checks the monitor-level wiring: a cap set
// before or after WatchServer bounds every series, and sampling through
// the DES produces the folded view.
func TestMonitorLimitSamples(t *testing.T) {
	sim := des.NewSimulator(1)
	mon := NewMonitor(sim, 50*time.Millisecond)
	early := &fakeDepth{name: "early", depth: 2}
	mon.WatchServer(early) // watched before the cap: LimitSamples must reach it
	mon.LimitSamples(4)
	late := &fakeDepth{name: "late", depth: 3}
	mon.WatchServer(late)
	mon.Start()
	if err := sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	for _, name := range []string{"early", "late"} {
		s := mon.Queue(name)
		if len(s.Values) > 4 {
			t.Fatalf("%s: %d stored samples, cap 4", name, len(s.Values))
		}
		if s.Factor() < 2 {
			t.Fatalf("%s: no fold happened over 20 samples (factor %d)", name, s.Factor())
		}
		// Constant input folds to the same constant.
		for _, v := range s.Values {
			if v != float64(mon.Queue(name).Values[0]) {
				t.Fatalf("%s: folded values not constant: %v", name, s.Values)
			}
		}
	}
}
