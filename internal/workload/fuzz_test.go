package workload

import (
	"strings"
	"testing"
)

// FuzzReadArrivalsCSV ensures the trace parser never panics and that
// accepted traces survive a write/read round trip.
func FuzzReadArrivalsCSV(f *testing.F) {
	f.Add("time_s,class\n0.5,Static\n")
	f.Add("1.0\n2.0\n")
	f.Add("")
	f.Add("garbage")
	f.Add("0.1,\"quoted,class\"\n")
	f.Fuzz(func(t *testing.T, data string) {
		arrivals, err := ReadArrivalsCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteArrivalsCSV(&buf, arrivals); err != nil {
			t.Fatalf("write of accepted trace failed: %v", err)
		}
		again, err := ReadArrivalsCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(arrivals) {
			t.Fatalf("round trip length %d vs %d", len(again), len(arrivals))
		}
		for i := range again {
			if again[i].At != arrivals[i].At {
				t.Fatalf("arrival %d time drifted: %v vs %v", i, again[i].At, arrivals[i].At)
			}
		}
	})
}
