package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
)

// instantServer admits everything and replies immediately.
type instantServer struct {
	sim      *des.Simulator
	accepted int
}

func (s *instantServer) Name() string { return "instant" }

func (s *instantServer) TryAccept(call *simnet.Call) bool {
	s.accepted++
	s.sim.Schedule(0, func() {
		if call.OnReply != nil {
			call.OnReply(call.Payload)
		}
	})
	return true
}

// refusingServer drops everything.
type refusingServer struct{}

func (refusingServer) Name() string                { return "refuser" }
func (refusingServer) TryAccept(*simnet.Call) bool { return false }

func front(sim *des.Simulator, dst simnet.Admission) Frontend {
	return Frontend{Transport: simnet.NewTransport(sim), Target: dst}
}

func TestMixPickDistribution(t *testing.T) {
	mix := NewMix().
		Add(Class{Name: "a"}, 1).
		Add(Class{Name: "b"}, 3)
	rng := rand.New(rand.NewSource(1))

	counts := make(map[string]int)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[mix.Pick(rng).Name]++
	}
	gotB := float64(counts["b"]) / n
	if math.Abs(gotB-0.75) > 0.02 {
		t.Fatalf("P(b) = %.3f, want ~0.75", gotB)
	}
}

func TestMixPickEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewMix().Pick(rng)
	if c.Name != "empty" {
		t.Fatalf("empty mix pick = %q", c.Name)
	}
}

func TestMixZeroWeightIgnored(t *testing.T) {
	mix := NewMix().Add(Class{Name: "a"}, 0).Add(Class{Name: "b"}, 1)
	if len(mix.Classes()) != 1 {
		t.Fatalf("classes = %v", mix.Classes())
	}
}

func TestMeanDemandsCalibration(t *testing.T) {
	// The default mix must keep the app tier the highest-loaded tier, with
	// a mean demand near 0.75ms so WL 7000 (≈990 req/s) runs at ≈75%.
	web, app, db := DefaultMix().MeanDemands()
	if app < 700*time.Microsecond || app > 800*time.Microsecond {
		t.Fatalf("mean app demand = %v, want ~750µs", app)
	}
	if web >= app || db >= app {
		t.Fatalf("app must dominate: web=%v app=%v db=%v", web, app, db)
	}
}

func TestRequestHelpers(t *testing.T) {
	r := &Request{Submitted: time.Second}
	if r.ResponseTime() != 0 || r.VLRT() {
		t.Fatal("in-flight request must have zero RT and not be VLRT")
	}
	r.Completed = 2 * time.Second
	if r.ResponseTime() != time.Second {
		t.Fatalf("RT = %v, want 1s", r.ResponseTime())
	}
	if r.VLRT() {
		t.Fatal("1s request flagged VLRT")
	}
	r.Completed = 5 * time.Second
	if !r.VLRT() {
		t.Fatal("4s request not flagged VLRT")
	}
	if r.DroppedBy() != "" {
		t.Fatalf("DroppedBy = %q, want empty", r.DroppedBy())
	}
	r.DroppedAt("apache")
	r.DroppedAt("tomcat")
	if r.DroppedBy() != "apache" {
		t.Fatalf("DroppedBy = %q, want apache (first drop)", r.DroppedBy())
	}
}

func TestClosedLoopThroughput(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}

	var completed int
	cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
		Clients:   700,
		ThinkTime: 7 * time.Second,
		Sink:      SinkFunc(func(*Request) { completed++ }),
	})
	cl.Start()
	if err := sim.Run(60 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	// 700 clients / 7s think ≈ 100 req/s → ~6000 in 60s.
	rate := float64(completed) / 60
	if rate < 85 || rate > 115 {
		t.Fatalf("throughput = %.1f req/s, want ~100", rate)
	}
}

func TestClosedLoopStops(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
		Clients: 50, ThinkTime: 100 * time.Millisecond,
	})
	cl.Start()
	sim.Schedule(time.Second, cl.Stop)
	if err := sim.Run(10 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	sentAtStop := cl.Sent()
	if sentAtStop == 0 {
		t.Fatal("nothing sent before Stop")
	}
	if cl.Completed() != cl.Sent() {
		t.Fatalf("sent=%d completed=%d after stop+drain", cl.Sent(), cl.Completed())
	}
}

func TestClosedLoopStartIdempotent(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
		Clients: 10, ThinkTime: time.Second,
	})
	cl.Start()
	cl.Start()
	if err := sim.Run(30 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	// ~10 clients × ~30 cycles; double-start would double it.
	rate := float64(cl.Sent()) / 30
	if rate > 15 {
		t.Fatalf("rate %.1f req/s suggests duplicated clients", rate)
	}
}

func TestClosedLoopGiveUpCountsFailed(t *testing.T) {
	sim := des.NewSimulator(7)
	fr := front(sim, refusingServer{})
	fr.Transport.MaxAttempts = 2
	cl := NewClosedLoop(sim, fr, ClosedLoopConfig{Clients: 5, ThinkTime: time.Second})
	cl.Start()
	if err := sim.Run(30 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if cl.Failed() == 0 {
		t.Fatal("no failures recorded against a refusing server")
	}
	if cl.Failed() != cl.Completed() {
		t.Fatalf("failed=%d completed=%d, want all completions failed", cl.Failed(), cl.Completed())
	}
}

func TestBurstModulationIncreasesVariance(t *testing.T) {
	arrivalsPerSecond := func(burst *BurstSpec) []int {
		sim := des.NewSimulator(3)
		srv := &instantServer{sim: sim}
		counts := make([]int, 120)
		cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
			Clients:   400,
			ThinkTime: 2 * time.Second,
			Burst:     burst,
			Sink: SinkFunc(func(r *Request) {
				s := int(r.Submitted / time.Second)
				if s < len(counts) {
					counts[s]++
				}
			}),
		})
		cl.Start()
		if err := sim.Run(2 * time.Minute); err != nil && err != des.ErrHorizon {
			t.Fatalf("Run: %v", err)
		}
		return counts
	}
	varOf := func(xs []int) float64 {
		var sum, sq float64
		for _, x := range xs {
			sum += float64(x)
		}
		mean := sum / float64(len(xs))
		for _, x := range xs {
			sq += (float64(x) - mean) * (float64(x) - mean)
		}
		return sq / float64(len(xs))
	}
	steady := varOf(arrivalsPerSecond(nil))
	bursty := varOf(arrivalsPerSecond(&BurstSpec{Index: 100}))
	if bursty < 3*steady {
		t.Fatalf("burst variance %.1f not clearly above steady %.1f", bursty, steady)
	}
}

func TestBatchFiresAtIntervals(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	b := NewBatch(sim, front(sim, srv), BatchConfig{Size: 400, Interval: 15 * time.Second})
	b.Start()
	if err := sim.Run(46 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	// Batches at 15s, 30s, 45s.
	if b.Sent() != 1200 {
		t.Fatalf("sent = %d, want 1200", b.Sent())
	}
	if srv.accepted != 1200 {
		t.Fatalf("accepted = %d, want 1200", srv.accepted)
	}
}

func TestBatchOffset(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	b := NewBatch(sim, front(sim, srv), BatchConfig{
		Size: 10, Interval: 15 * time.Second, Offset: 2 * time.Second,
	})
	b.Start()
	if err := sim.Run(3 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if b.Sent() != 10 {
		t.Fatalf("sent = %d after offset, want 10", b.Sent())
	}
}

func TestBatchStop(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	b := NewBatch(sim, front(sim, srv), BatchConfig{Size: 5, Interval: time.Second})
	b.Start()
	sim.Schedule(2500*time.Millisecond, b.Stop)
	if err := sim.Run(10 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if b.Sent() != 10 {
		t.Fatalf("sent = %d, want 10 (two batches before stop)", b.Sent())
	}
}

func TestBatchDefaultsToViewStory(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	var class string
	b := NewBatch(sim, front(sim, srv), BatchConfig{
		Size: 1, Interval: time.Second,
		Sink: SinkFunc(func(r *Request) { class = r.Class.Name }),
	})
	b.Start()
	if err := sim.Run(2 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if class != "ViewStory" {
		t.Fatalf("class = %q, want ViewStory", class)
	}
}

func TestOpenLoopRate(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	o := NewOpenLoop(sim, front(sim, srv), OpenLoopConfig{Rate: 200})
	o.Start()
	if err := sim.Run(30 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	rate := float64(o.Sent()) / 30
	if rate < 180 || rate > 220 {
		t.Fatalf("rate = %.1f, want ~200", rate)
	}
}

func TestOpenLoopZeroRateNeverStarts(t *testing.T) {
	sim := des.NewSimulator(7)
	srv := &instantServer{sim: sim}
	o := NewOpenLoop(sim, front(sim, srv), OpenLoopConfig{Rate: 0})
	o.Start()
	if err := sim.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o.Sent() != 0 {
		t.Fatalf("sent = %d, want 0", o.Sent())
	}
}

// Property: mix picking never returns a class outside the registered set
// and the weighted frequencies sum to 1 over any sample.
func TestPropertyMixPickMembership(t *testing.T) {
	f := func(weights []uint8, seed int64) bool {
		mix := NewMix()
		valid := make(map[string]bool)
		for i, w := range weights {
			if i >= 6 {
				break
			}
			name := string(rune('a' + i))
			mix.Add(Class{Name: name}, float64(w%10)+0.5)
			valid[name] = true
		}
		if len(valid) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if !valid[mix.Pick(rng).Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmissionMixHeavierOnDB(t *testing.T) {
	_, appR, dbR := DefaultMix().MeanDemands()
	_, appW, dbW := SubmissionMix().MeanDemands()
	if dbW <= dbR {
		t.Fatalf("submission mix db demand %v not above browse-only %v", dbW, dbR)
	}
	// The app tier must remain the bottleneck so the paper's scenarios
	// still apply under the write mix.
	if appW <= dbW {
		t.Fatalf("app (%v) must still dominate db (%v) in the submission mix", appW, dbW)
	}
	if appW < appR {
		t.Fatalf("submission mix app demand %v below browse-only %v", appW, appR)
	}
}

func TestSetMixTakesEffectNextCycle(t *testing.T) {
	sim := des.NewSimulator(1)
	srv := &instantServer{sim: sim}

	counts := make(map[string]int)
	cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
		Clients:   20,
		ThinkTime: 10 * time.Millisecond,
		Mix:       NewMix().Add(Class{Name: "before"}, 1),
		Sink: SinkFunc(func(r *Request) {
			counts[r.Class.Name]++
		}),
	})
	cl.Start()
	sim.Schedule(time.Second, func() {
		cl.SetMix(NewMix().Add(Class{Name: "after"}, 1))
	})
	if err := sim.Run(2 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if counts["before"] == 0 || counts["after"] == 0 {
		t.Fatalf("counts = %v, want both classes seen", counts)
	}
	// SetMix(nil) must not clear the mix.
	cl.SetMix(nil)
	if cl.cfg.Mix == nil {
		t.Fatal("SetMix(nil) cleared the mix")
	}
}
