// Package workload generates RUBBoS-like traffic for the n-tier system.
//
// The paper drives its testbed with the RUBBoS bulletin-board benchmark:
// thousands of closed-loop clients with ~7-second think times and a
// configurable burstiness index (Mi et al., ICAC'09), plus a modified
// "SysBursty" generator that emits a fixed batch of requests at fixed
// intervals to create reproducible CPU millibottlenecks (Section V-B).
// This package provides all three generators plus an open-loop Poisson
// source, and the request/interaction model they share.
package workload

import (
	"math/rand"
	"time"

	"ctqosim/internal/span"
)

// DefaultThinkTime is the RUBBoS client think time. 4000/7000/8000 clients
// at a 7s think time yield the paper's ~572/990/1103 req/s throughputs.
const DefaultThinkTime = 7 * time.Second

// Class describes one RUBBoS interaction type and its per-tier CPU demands.
// Demands are calibrated so the paper's workloads hit the paper's
// utilizations (e.g. app tier ≈75% at WL 7000; see internal/ntier).
type Class struct {
	// Name is the RUBBoS interaction name.
	Name string
	// Static marks requests served entirely by the web tier (images, CSS).
	Static bool
	// WebCPU is the web-tier demand.
	WebCPU time.Duration
	// AppCPU is the application-tier demand, split evenly around the DB
	// queries.
	AppCPU time.Duration
	// DBQueries is the number of database round trips.
	DBQueries int
	// DBCPU is the database demand per query.
	DBCPU time.Duration
}

// Request is one end-to-end client request. It is the payload that travels
// the whole invocation chain, so transport drops on any hop are attributed
// to it (it implements simnet.DropRecorder).
type Request struct {
	// ID is unique within a generator.
	ID uint64
	// Class is the interaction type.
	Class Class
	// Submitted is when the client first sent the request.
	Submitted time.Duration
	// Completed is when the reply (or give-up) arrived; zero while in
	// flight.
	Completed time.Duration
	// Drops lists, in order, each server that dropped a packet of this
	// request on any hop of the chain.
	Drops []string
	// Failed marks requests that never completed (retransmissions
	// exhausted somewhere in the chain).
	Failed bool
	// Trace is the request's span tree; nil unless the experiment runs
	// with span tracing enabled.
	Trace *span.Trace
}

// DroppedAt implements simnet.DropRecorder.
func (r *Request) DroppedAt(server string) {
	r.Drops = append(r.Drops, server)
}

// ResponseTime returns the end-to-end latency, or zero if still in flight.
func (r *Request) ResponseTime() time.Duration {
	if r.Completed == 0 {
		return 0
	}
	return r.Completed - r.Submitted
}

// VLRT reports whether this is a very long response time request under the
// paper's 3-second criterion.
func (r *Request) VLRT() bool {
	return r.Completed > 0 && r.ResponseTime() > 3*time.Second
}

// DroppedBy returns the server responsible for this request's first drop,
// or "" if it was never dropped. The paper attributes each VLRT request to
// the server that dropped its packets.
func (r *Request) DroppedBy() string {
	if len(r.Drops) == 0 {
		return ""
	}
	return r.Drops[0]
}

// Sink receives completed requests; implemented by the metrics recorder.
type Sink interface {
	Record(*Request)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Request)

// Record implements Sink.
func (f SinkFunc) Record(r *Request) { f(r) }

// Mix is a weighted set of interaction classes.
type Mix struct {
	classes []Class
	weights []float64
	total   float64
}

// NewMix returns an empty mix.
func NewMix() *Mix { return &Mix{} }

// Add registers a class with the given relative weight.
func (m *Mix) Add(c Class, weight float64) *Mix {
	if weight <= 0 {
		return m
	}
	m.classes = append(m.classes, c)
	m.weights = append(m.weights, weight)
	m.total += weight
	return m
}

// Pick draws a class according to the weights.
func (m *Mix) Pick(rng *rand.Rand) Class {
	if len(m.classes) == 0 {
		return Class{Name: "empty"}
	}
	x := rng.Float64() * m.total
	for i, w := range m.weights {
		x -= w
		if x < 0 {
			return m.classes[i]
		}
	}
	return m.classes[len(m.classes)-1]
}

// Classes returns a copy of the registered classes.
func (m *Mix) Classes() []Class {
	out := make([]Class, len(m.classes))
	copy(out, m.classes)
	return out
}

// MeanDemands returns the mix's expected CPU demand per request at each
// tier — the quantity that, multiplied by throughput, gives tier
// utilization.
func (m *Mix) MeanDemands() (web, app, db time.Duration) {
	if m.total == 0 {
		return 0, 0, 0
	}
	var w, a, d float64
	for i, c := range m.classes {
		p := m.weights[i] / m.total
		w += p * float64(c.WebCPU)
		a += p * float64(c.AppCPU)
		d += p * float64(c.DBCPU) * float64(c.DBQueries)
	}
	return time.Duration(w), time.Duration(a), time.Duration(d)
}

// RUBBoS interaction classes, calibrated against the paper's measured
// throughputs and utilizations (Fig. 1): at WL 7000 (≈990 req/s) the app
// tier runs at ≈75%, so the mean app demand is ≈0.75 ms per request.
var (
	// ClassStatic is a static file served by the web tier alone.
	ClassStatic = Class{
		Name:   "Static",
		Static: true,
		WebCPU: 150 * time.Microsecond,
	}
	// ClassStoriesOfTheDay is the RUBBoS front page.
	ClassStoriesOfTheDay = Class{
		Name:      "StoriesOfTheDay",
		WebCPU:    200 * time.Microsecond,
		AppCPU:    900 * time.Microsecond,
		DBQueries: 1,
		DBCPU:     400 * time.Microsecond,
	}
	// ClassViewStory is the paper's canonical dynamic-heavy interaction.
	ClassViewStory = Class{
		Name:      "ViewStory",
		WebCPU:    200 * time.Microsecond,
		AppCPU:    time.Millisecond,
		DBQueries: 2,
		DBCPU:     300 * time.Microsecond,
	}
	// ClassViewComment is a medium dynamic interaction.
	ClassViewComment = Class{
		Name:      "ViewComment",
		WebCPU:    200 * time.Microsecond,
		AppCPU:    900 * time.Microsecond,
		DBQueries: 1,
		DBCPU:     500 * time.Microsecond,
	}
)

// Write interactions of the RUBBoS submission mix. Writes are heavier at
// the database (index updates, logging) and slightly heavier at the app
// tier (validation, formatting).
var (
	// ClassStoreComment posts a comment.
	ClassStoreComment = Class{
		Name:      "StoreComment",
		WebCPU:    200 * time.Microsecond,
		AppCPU:    1100 * time.Microsecond,
		DBQueries: 2,
		DBCPU:     700 * time.Microsecond,
	}
	// ClassSubmitStory posts a new story.
	ClassSubmitStory = Class{
		Name:      "SubmitStory",
		WebCPU:    200 * time.Microsecond,
		AppCPU:    1200 * time.Microsecond,
		DBQueries: 3,
		DBCPU:     600 * time.Microsecond,
	}
)

// DefaultMix returns the browse-only RUBBoS mix used by all paper
// experiments.
func DefaultMix() *Mix {
	return NewMix().
		Add(ClassStatic, 0.20).
		Add(ClassStoriesOfTheDay, 0.30).
		Add(ClassViewStory, 0.30).
		Add(ClassViewComment, 0.20)
}

// SubmissionMix returns the RUBBoS read-write mix: the browse-only mix
// with 10% of the dynamic traffic replaced by writes, per the benchmark's
// submission workload.
func SubmissionMix() *Mix {
	return NewMix().
		Add(ClassStatic, 0.20).
		Add(ClassStoriesOfTheDay, 0.27).
		Add(ClassViewStory, 0.27).
		Add(ClassViewComment, 0.16).
		Add(ClassStoreComment, 0.07).
		Add(ClassSubmitStory, 0.03)
}
