package workload

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/des"
)

func TestReplayFiresAtRecordedTimes(t *testing.T) {
	sim := des.NewSimulator(1)
	srv := &instantServer{sim: sim}

	var completions []time.Duration
	arrivals := []Arrival{
		{At: 300 * time.Millisecond, Class: "ViewStory"},
		{At: 100 * time.Millisecond, Class: "Static"}, // out of order on purpose
		{At: 200 * time.Millisecond},                  // unknown → mix fallback
	}
	classes := map[string]Class{
		"ViewStory": ClassViewStory,
		"Static":    ClassStatic,
	}
	rp := NewReplay(sim, front(sim, srv), arrivals, classes, nil,
		SinkFunc(func(r *Request) { completions = append(completions, r.Submitted) }))
	rp.Start()
	if err := sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if rp.Sent() != 3 {
		t.Fatalf("sent = %d, want 3", rp.Sent())
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("arrival %d at %v, want %v", i, completions[i], w)
		}
	}
}

func TestReplayClassResolution(t *testing.T) {
	sim := des.NewSimulator(1)
	srv := &instantServer{sim: sim}
	var classes []string
	rp := NewReplay(sim, front(sim, srv),
		[]Arrival{{At: time.Millisecond, Class: "Static"}},
		map[string]Class{"Static": ClassStatic}, nil,
		SinkFunc(func(r *Request) { classes = append(classes, r.Class.Name) }))
	rp.Start()
	if err := sim.Run(time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if len(classes) != 1 || classes[0] != "Static" {
		t.Fatalf("classes = %v", classes)
	}
}

func TestArrivalsCSVRoundTrip(t *testing.T) {
	arrivals := []Arrival{
		{At: 1500 * time.Millisecond, Class: "ViewStory"},
		{At: 2 * time.Second, Class: ""},
	}
	var buf strings.Builder
	if err := WriteArrivalsCSV(&buf, arrivals); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadArrivalsCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip = %v", got)
	}
	if got[0].At != 1500*time.Millisecond || got[0].Class != "ViewStory" {
		t.Fatalf("first = %+v", got[0])
	}
}

func TestReadArrivalsCSVHeaderOptional(t *testing.T) {
	got, err := ReadArrivalsCSV(strings.NewReader("0.5,Static\n1.0\n"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 2 || got[0].At != 500*time.Millisecond {
		t.Fatalf("got %v", got)
	}
}

func TestReadArrivalsCSVBadTime(t *testing.T) {
	if _, err := ReadArrivalsCSV(strings.NewReader("time_s,class\nxyz,Static\n")); err == nil {
		t.Fatal("bad time accepted")
	}
}
