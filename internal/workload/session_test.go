package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ctqosim/internal/des"
)

func TestDefaultSessionModelValid(t *testing.T) {
	if err := DefaultSessionModel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSessionValidateRejectsBadModels(t *testing.T) {
	base := func() *SessionModel {
		return &SessionModel{
			Start:   "a",
			Classes: map[string]Class{"a": {Name: "a"}, "b": {Name: "b"}},
			Transitions: map[string][]Transition{
				"a": {{To: "b", Weight: 1}},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base model invalid: %v", err)
	}

	m := base()
	m.Start = "missing"
	if m.Validate() == nil {
		t.Fatal("missing start accepted")
	}

	m = base()
	m.Transitions["a"] = []Transition{{To: "nowhere", Weight: 1}}
	if m.Validate() == nil {
		t.Fatal("unknown destination accepted")
	}

	m = base()
	m.Transitions["a"] = []Transition{{To: "b", Weight: 0}}
	if m.Validate() == nil {
		t.Fatal("zero weight accepted")
	}

	m = base()
	m.Transitions["ghost"] = []Transition{{To: "b", Weight: 1}}
	if m.Validate() == nil {
		t.Fatal("unknown source accepted")
	}

	empty := &SessionModel{}
	if empty.Validate() == nil {
		t.Fatal("empty model accepted")
	}
}

func TestSessionNextFollowsEdges(t *testing.T) {
	m := &SessionModel{
		Start:   "a",
		Classes: map[string]Class{"a": {Name: "a"}, "b": {Name: "b"}},
		Transitions: map[string][]Transition{
			"a": {{To: "b", Weight: 1}},
			// b is terminal: sessions restart at a.
		},
	}
	rng := rand.New(rand.NewSource(1))
	if got := m.Next(rng, "a"); got != "b" {
		t.Fatalf("Next(a) = %q, want b", got)
	}
	if got := m.Next(rng, "b"); got != "a" {
		t.Fatalf("Next(b) = %q, want restart at a", got)
	}
	if got := m.Next(rng, "unknown"); got != "a" {
		t.Fatalf("Next(unknown) = %q, want restart", got)
	}
}

func TestSessionClassFallback(t *testing.T) {
	m := DefaultSessionModel()
	if got := m.Class("not-a-class"); got.Name != m.Start {
		t.Fatalf("fallback class = %q, want start", got.Name)
	}
	if got := m.Class(ClassViewStory.Name); got.Name != ClassViewStory.Name {
		t.Fatal("known class lookup failed")
	}
}

func TestStationaryMixSumsToOne(t *testing.T) {
	mix := DefaultSessionModel().StationaryMix()
	classes := mix.Classes()
	if len(classes) != 4 {
		t.Fatalf("stationary classes = %d, want 4", len(classes))
	}
	// All four interactions recur, so all stationary probabilities are
	// positive; weights are probabilities summing to ~1 (checked through
	// MeanDemands being finite and positive).
	_, app, _ := mix.MeanDemands()
	if app <= 0 {
		t.Fatal("stationary mix has zero app demand")
	}
}

func TestStationaryMixMatchesSimulatedFrequencies(t *testing.T) {
	// Walk the chain directly and compare empirical frequencies to the
	// power-iteration stationary distribution.
	m := DefaultSessionModel()
	rng := rand.New(rand.NewSource(7))
	counts := make(map[string]int)
	state := m.Start
	const steps = 200000
	for i := 0; i < steps; i++ {
		counts[state]++
		state = m.Next(rng, state)
	}

	stationary := m.StationaryMix()
	// Re-derive the stationary probability of ViewStory from the mix by
	// sampling it.
	sampleCounts := make(map[string]int)
	for i := 0; i < steps; i++ {
		sampleCounts[stationary.Pick(rng).Name]++
	}
	for _, name := range []string{ClassViewStory.Name, ClassStatic.Name} {
		walk := float64(counts[name]) / steps
		mix := float64(sampleCounts[name]) / steps
		if math.Abs(walk-mix) > 0.02 {
			t.Errorf("%s: walk frequency %.3f vs stationary mix %.3f", name, walk, mix)
		}
	}
}

func TestClosedLoopWithSession(t *testing.T) {
	sim := des.NewSimulator(11)
	srv := &instantServer{sim: sim}

	var classes []string
	cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
		Clients:   1,
		ThinkTime: 10 * time.Millisecond,
		Session:   DefaultSessionModel(),
		Sink:      SinkFunc(func(r *Request) { classes = append(classes, r.Class.Name) }),
	})
	cl.Start()
	if err := sim.Run(30 * time.Second); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if len(classes) < 100 {
		t.Fatalf("completed %d requests", len(classes))
	}
	// The first request of the session is the start interaction.
	if classes[0] != ClassStoriesOfTheDay.Name {
		t.Fatalf("first interaction = %q, want start", classes[0])
	}
	// Every observed transition must be a legal edge (or a restart).
	m := DefaultSessionModel()
	legal := func(from, to string) bool {
		for _, e := range m.Transitions[from] {
			if e.To == to {
				return true
			}
		}
		return len(m.Transitions[from]) == 0 && to == m.Start
	}
	for i := 1; i < len(classes); i++ {
		if !legal(classes[i-1], classes[i]) {
			t.Fatalf("illegal transition %q -> %q", classes[i-1], classes[i])
		}
	}
}

func TestClosedLoopSessionPerClientState(t *testing.T) {
	// Multiple clients walk independent sessions: with many clients the
	// interaction frequencies approach the stationary mix rather than
	// everyone staying in lockstep.
	sim := des.NewSimulator(13)
	srv := &instantServer{sim: sim}

	counts := make(map[string]int)
	total := 0
	cl := NewClosedLoop(sim, front(sim, srv), ClosedLoopConfig{
		Clients:   200,
		ThinkTime: 50 * time.Millisecond,
		Session:   DefaultSessionModel(),
		Sink: SinkFunc(func(r *Request) {
			counts[r.Class.Name]++
			total++
		}),
	})
	cl.Start()
	if err := sim.Run(time.Minute); err != nil && err != des.ErrHorizon {
		t.Fatalf("Run: %v", err)
	}
	if total < 10000 {
		t.Fatalf("total = %d", total)
	}
	for name, c := range counts {
		share := float64(c) / float64(total)
		if share < 0.05 || share > 0.60 {
			t.Errorf("%s share = %.2f, implausible for the browsing chain", name, share)
		}
	}
}
