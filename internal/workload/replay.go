package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/simnet"
)

// Arrival is one scheduled request of a replay trace.
type Arrival struct {
	// At is the simulated arrival time.
	At time.Duration
	// Class names the interaction; empty falls back to the mix.
	Class string
}

// Replay re-issues a recorded arrival trace against a system — the
// counterpart of trace.Log.WriteCSV for closing the loop: record a run,
// replay it against a different configuration, compare.
type Replay struct {
	sim      *des.Simulator
	front    Frontend
	arrivals []Arrival
	classes  map[string]Class
	fallback *Mix
	sink     Sink

	nextID uint64
	sent   int64
}

// NewReplay creates a replay generator over the given arrivals (sorted
// internally). Classes resolves class names; nil or missing names fall
// back to mix (nil mix means DefaultMix).
func NewReplay(sim *des.Simulator, front Frontend, arrivals []Arrival, classes map[string]Class, mix *Mix, sink Sink) *Replay {
	sorted := make([]Arrival, len(arrivals))
	copy(sorted, arrivals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	if mix == nil {
		mix = DefaultMix()
	}
	return &Replay{
		sim: sim, front: front, arrivals: sorted,
		classes: classes, fallback: mix, sink: sink,
	}
}

// Start schedules every arrival.
func (r *Replay) Start() {
	for _, a := range r.arrivals {
		a := a
		r.sim.ScheduleAt(a.At, func() { r.fire(a) })
	}
}

// Sent returns the number of requests issued so far.
func (r *Replay) Sent() int64 { return r.sent }

func (r *Replay) fire(a Arrival) {
	class, ok := r.classes[a.Class]
	if !ok {
		class = r.fallback.Pick(r.sim.Rand())
	}
	req := &Request{ID: r.nextID, Class: class, Submitted: r.sim.Now()}
	r.nextID++
	r.sent++

	call := &simnet.Call{Payload: req}
	finish := func(failed bool) {
		req.Completed = r.sim.Now()
		req.Failed = failed
		if r.sink != nil {
			r.sink.Record(req)
		}
	}
	call.OnReply = func(any) { finish(false) }
	call.OnGiveUp = func() { finish(true) }
	r.front.Transport.Send(r.front.Target, call)
}

// ReadArrivalsCSV parses a trace of "time_s,class" rows (header optional;
// the class column may be omitted).
func ReadArrivalsCSV(rd io.Reader) ([]Arrival, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	var out []Arrival
	for lineNo := 1; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("replay csv line %d: %w", lineNo, err)
		}
		if len(rec) == 0 {
			continue
		}
		secs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, fmt.Errorf("replay csv line %d: bad time %q", lineNo, rec[0])
		}
		a := Arrival{At: time.Duration(secs * float64(time.Second))}
		if len(rec) > 1 {
			a.Class = rec[1]
		}
		out = append(out, a)
	}
}

// WriteArrivalsCSV renders arrivals in the same format ReadArrivalsCSV
// accepts.
func WriteArrivalsCSV(w io.Writer, arrivals []Arrival) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "class"}); err != nil {
		return err
	}
	for _, a := range arrivals {
		if err := cw.Write([]string{
			strconv.FormatFloat(a.At.Seconds(), 'f', 6, 64),
			a.Class,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
