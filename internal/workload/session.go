package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Transition is one weighted edge of a session model.
type Transition struct {
	// To is the name of the next interaction.
	To string
	// Weight is the relative probability of taking this edge.
	Weight float64
}

// SessionModel is a first-order Markov model of a browsing session:
// instead of drawing interactions independently from a mix, each client
// walks the transition graph, the way real RUBBoS users navigate from the
// front page into stories and comment threads. Mixes remain the default —
// the paper's experiments only need the stationary rates — but sessions
// make per-client request sequences realistic for extensions.
type SessionModel struct {
	// Start is the interaction every session begins with.
	Start string
	// Classes maps interaction names to their demand profiles.
	Classes map[string]Class
	// Transitions lists the outgoing edges per interaction. An
	// interaction with no outgoing edges restarts the session.
	Transitions map[string][]Transition
}

// Validate checks that the model is well formed: the start exists, every
// edge references a known class, and all weights are positive.
func (m *SessionModel) Validate() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("session: no classes")
	}
	if _, ok := m.Classes[m.Start]; !ok {
		return fmt.Errorf("session: start %q is not a class", m.Start)
	}
	for from, edges := range m.Transitions {
		if _, ok := m.Classes[from]; !ok {
			return fmt.Errorf("session: transition source %q is not a class", from)
		}
		for _, e := range edges {
			if _, ok := m.Classes[e.To]; !ok {
				return fmt.Errorf("session: %q -> unknown class %q", from, e.To)
			}
			if e.Weight <= 0 {
				return fmt.Errorf("session: %q -> %q has non-positive weight", from, e.To)
			}
		}
	}
	return nil
}

// Next draws the interaction following current. Unknown or terminal
// interactions restart at Start.
func (m *SessionModel) Next(rng *rand.Rand, current string) string {
	edges := m.Transitions[current]
	if len(edges) == 0 {
		return m.Start
	}
	var total float64
	for _, e := range edges {
		total += e.Weight
	}
	x := rng.Float64() * total
	for _, e := range edges {
		x -= e.Weight
		if x < 0 {
			return e.To
		}
	}
	return edges[len(edges)-1].To
}

// Class returns the demand profile of an interaction, falling back to the
// start's class for unknown names.
func (m *SessionModel) Class(name string) Class {
	if c, ok := m.Classes[name]; ok {
		return c
	}
	return m.Classes[m.Start]
}

// StationaryMix estimates the long-run interaction frequencies of the
// session model by a deterministic power iteration, returned as an
// equivalent Mix. This is how a session model is calibrated against the
// tier-utilization targets.
func (m *SessionModel) StationaryMix() *Mix {
	names := make([]string, 0, len(m.Classes))
	index := make(map[string]int, len(m.Classes))
	for name := range m.Classes {
		names = append(names, name)
	}
	// Sort for determinism.
	sort.Strings(names)
	for i, name := range names {
		index[name] = i
	}

	n := len(names)
	prob := make([]float64, n)
	prob[index[m.Start]] = 1
	next := make([]float64, n)
	for iter := 0; iter < 200; iter++ {
		for i := range next {
			next[i] = 0
		}
		for from, p := range prob {
			if p == 0 {
				continue
			}
			edges := m.Transitions[names[from]]
			if len(edges) == 0 {
				next[index[m.Start]] += p
				continue
			}
			var total float64
			for _, e := range edges {
				total += e.Weight
			}
			for _, e := range edges {
				next[index[e.To]] += p * e.Weight / total
			}
		}
		prob, next = next, prob
	}

	mix := NewMix()
	for i, name := range names {
		if prob[i] > 0 {
			mix.Add(m.Classes[name], prob[i])
		}
	}
	return mix
}

// DefaultSessionModel returns a RUBBoS browsing session: the front page
// leads into stories, stories into comments or back, with static assets
// interleaved.
func DefaultSessionModel() *SessionModel {
	return &SessionModel{
		Start: ClassStoriesOfTheDay.Name,
		Classes: map[string]Class{
			ClassStoriesOfTheDay.Name: ClassStoriesOfTheDay,
			ClassViewStory.Name:       ClassViewStory,
			ClassViewComment.Name:     ClassViewComment,
			ClassStatic.Name:          ClassStatic,
		},
		Transitions: map[string][]Transition{
			ClassStoriesOfTheDay.Name: {
				{To: ClassViewStory.Name, Weight: 0.55},
				{To: ClassStatic.Name, Weight: 0.30},
				{To: ClassStoriesOfTheDay.Name, Weight: 0.15},
			},
			ClassViewStory.Name: {
				{To: ClassViewComment.Name, Weight: 0.45},
				{To: ClassViewStory.Name, Weight: 0.20},
				{To: ClassStoriesOfTheDay.Name, Weight: 0.25},
				{To: ClassStatic.Name, Weight: 0.10},
			},
			ClassViewComment.Name: {
				{To: ClassViewStory.Name, Weight: 0.40},
				{To: ClassViewComment.Name, Weight: 0.25},
				{To: ClassStoriesOfTheDay.Name, Weight: 0.35},
			},
			ClassStatic.Name: {
				{To: ClassStoriesOfTheDay.Name, Weight: 0.60},
				{To: ClassViewStory.Name, Weight: 0.40},
			},
		},
	}
}
