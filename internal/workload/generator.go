package workload

import (
	"time"

	"ctqosim/internal/des"
	"ctqosim/internal/server"
	"ctqosim/internal/simnet"
	"ctqosim/internal/span"
)

// Frontend is where generators send requests: the system's web tier plus
// the transport that carries client packets (and retransmits their drops).
type Frontend struct {
	// Transport carries client→web packets.
	Transport *simnet.Transport
	// Target is the web tier's admission.
	Target simnet.Admission
}

// BurstSpec adds burstiness to a closed-loop population, approximating the
// index-of-dispersion knob of Mi et al. (ICAC'09): time is divided into
// epochs; a rare "hot" epoch compresses think times by Index, a normal
// epoch stretches them slightly to preserve the long-run average rate.
type BurstSpec struct {
	// Index is the burstiness index; 1 (or less) means no modulation.
	Index float64
	// Epoch is the modulation period; zero defaults to 1s.
	Epoch time.Duration
}

const defaultBurstEpoch = time.Second

// ClosedLoopConfig parameterizes a RUBBoS-style closed-loop population.
type ClosedLoopConfig struct {
	// Clients is the population size (the paper's "WL n").
	Clients int
	// ThinkTime is the mean exponential think time; zero defaults to
	// DefaultThinkTime.
	ThinkTime time.Duration
	// Mix is the interaction mix; nil defaults to DefaultMix.
	Mix *Mix
	// Session, if non-nil, replaces the independent mix draw with a
	// per-client Markov browsing session.
	Session *SessionModel
	// Burst, if non-nil with Index > 1, modulates think times.
	Burst *BurstSpec
	// Sink receives every completed request; may be nil.
	Sink Sink
	// Tracer, if non-nil, opens a span trace per request so every tier can
	// record where the request's time went.
	Tracer *span.Tracer
}

// ClosedLoop is a population of clients that think, send, and wait.
type ClosedLoop struct {
	sim   *des.Simulator
	front Frontend
	cfg   ClosedLoopConfig

	hot     bool
	nextID  uint64
	started bool
	stopped bool

	sent      int64
	completed int64
	failed    int64
}

// NewClosedLoop creates a closed-loop generator; call Start to begin.
func NewClosedLoop(sim *des.Simulator, front Frontend, cfg ClosedLoopConfig) *ClosedLoop {
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = DefaultThinkTime
	}
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	return &ClosedLoop{sim: sim, front: front, cfg: cfg}
}

// Start launches the client population. Each client begins with a random
// initial think so arrivals are spread out.
func (c *ClosedLoop) Start() {
	if c.started {
		return
	}
	c.started = true
	for i := 0; i < c.cfg.Clients; i++ {
		st := &clientState{}
		if c.cfg.Session != nil {
			st.current = c.cfg.Session.Start
		}
		c.sim.Schedule(c.think(), func() { c.clientLoop(st) })
	}
	if c.cfg.Burst != nil && c.cfg.Burst.Index > 1 {
		epoch := c.cfg.Burst.Epoch
		if epoch <= 0 {
			epoch = defaultBurstEpoch
		}
		des.NewTicker(c.sim, epoch, func(time.Duration) {
			// Hot with probability 1/(2·Index): rare, intense epochs.
			c.hot = c.sim.Rand().Float64() < 1/(2*c.cfg.Burst.Index)
		})
	}
}

// Stop prevents clients from sending further requests after their current
// cycle.
func (c *ClosedLoop) Stop() { c.stopped = true }

// SetMix swaps the interaction mix — the scenario engine's shift_mix
// event. Clients draw from the mix per request, so the change takes
// effect at each client's next cycle. A nil mix is ignored. When a
// session model drives the population, the mix is unused and SetMix has
// no visible effect.
func (c *ClosedLoop) SetMix(m *Mix) {
	if m == nil {
		return
	}
	c.cfg.Mix = m
}

// Sent returns the number of requests sent so far.
func (c *ClosedLoop) Sent() int64 { return c.sent }

// Completed returns the number of requests finished (including failures).
func (c *ClosedLoop) Completed() int64 { return c.completed }

// Failed returns the number of requests that gave up.
func (c *ClosedLoop) Failed() int64 { return c.failed }

// clientState is one client's session position.
type clientState struct {
	current string
}

func (c *ClosedLoop) clientLoop(st *clientState) {
	if c.stopped {
		return
	}
	class := c.cfg.Mix.Pick(c.sim.Rand())
	if c.cfg.Session != nil {
		class = c.cfg.Session.Class(st.current)
	}
	req := &Request{
		ID:        c.nextID,
		Class:     class,
		Submitted: c.sim.Now(),
	}
	req.Trace = c.cfg.Tracer.StartRequest(req.ID, class.Name)
	c.nextID++
	c.sent++

	nextCycle := func() {
		if c.cfg.Session != nil {
			st.current = c.cfg.Session.Next(c.sim.Rand(), st.current)
		}
		c.sim.Schedule(c.think(), func() { c.clientLoop(st) })
	}
	call := &simnet.Call{Payload: req, Trace: req.Trace, SpanID: span.RootID}
	call.OnReply = func(reply any) {
		req.Completed = c.sim.Now()
		if _, ok := reply.(server.Failure); ok {
			req.Failed = true
			c.failed++
		}
		c.completed++
		c.cfg.Tracer.Finish(req.Trace)
		c.record(req)
		nextCycle()
	}
	call.OnGiveUp = func() {
		req.Completed = c.sim.Now()
		req.Failed = true
		c.failed++
		c.completed++
		c.cfg.Tracer.Finish(req.Trace)
		c.record(req)
		nextCycle()
	}
	c.front.Transport.Send(c.front.Target, call)
}

func (c *ClosedLoop) record(req *Request) {
	if c.cfg.Sink != nil {
		c.cfg.Sink.Record(req)
	}
}

// think draws the next think time, applying burst modulation.
func (c *ClosedLoop) think() time.Duration {
	mean := c.cfg.ThinkTime
	if c.cfg.Burst != nil && c.cfg.Burst.Index > 1 {
		if c.hot {
			mean = time.Duration(float64(mean) / c.cfg.Burst.Index)
		} else {
			// Stretch cold epochs to keep the long-run rate near nominal:
			// with p = 1/(2I) hot epochs at I× rate, cold epochs run at
			// (1 - p·I)/(1 - p) = ~0.5× rate.
			p := 1 / (2 * c.cfg.Burst.Index)
			cold := (1 - p*c.cfg.Burst.Index) / (1 - p)
			mean = time.Duration(float64(mean) / cold)
		}
	}
	return time.Duration(c.sim.Rand().ExpFloat64() * float64(mean))
}

// BatchConfig parameterizes the paper's modified SysBursty generator: a
// fixed batch of identical requests at fixed intervals, creating
// reproducible millibottlenecks ("a batch of 400 ViewStory requests
// arriving every 15 seconds", Section V-B).
type BatchConfig struct {
	// Size is the number of requests per batch.
	Size int
	// Interval is the batch period.
	Interval time.Duration
	// Offset delays the first batch; zero fires the first batch after one
	// full interval.
	Offset time.Duration
	// Class is the interaction sent; zero value defaults to ViewStory.
	Class Class
	// Sink receives completed requests; may be nil.
	Sink Sink
	// Tracer, if non-nil, opens a span trace per request.
	Tracer *span.Tracer
}

// Batch emits deterministic request bursts.
type Batch struct {
	sim    *des.Simulator
	front  Frontend
	cfg    BatchConfig
	ticker *des.Ticker
	nextID uint64
	sent   int64
}

// NewBatch creates a batch generator; call Start to begin.
func NewBatch(sim *des.Simulator, front Frontend, cfg BatchConfig) *Batch {
	if cfg.Class.Name == "" {
		cfg.Class = ClassViewStory
	}
	if cfg.Size < 1 {
		cfg.Size = 1
	}
	return &Batch{sim: sim, front: front, cfg: cfg}
}

// Start schedules the periodic batches.
func (b *Batch) Start() {
	if b.ticker != nil {
		return
	}
	fire := func(time.Duration) { b.fire() }
	if b.cfg.Offset > 0 {
		b.sim.Schedule(b.cfg.Offset, func() {
			b.fire()
			b.ticker = des.NewTicker(b.sim, b.cfg.Interval, fire)
		})
		return
	}
	b.ticker = des.NewTicker(b.sim, b.cfg.Interval, fire)
}

// Stop cancels future batches.
func (b *Batch) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}

// Sent returns the number of requests emitted.
func (b *Batch) Sent() int64 { return b.sent }

func (b *Batch) fire() {
	for i := 0; i < b.cfg.Size; i++ {
		req := &Request{ID: b.nextID, Class: b.cfg.Class, Submitted: b.sim.Now()}
		req.Trace = b.cfg.Tracer.StartRequest(req.ID, req.Class.Name)
		b.nextID++
		b.sent++
		call := &simnet.Call{Payload: req, Trace: req.Trace, SpanID: span.RootID}
		call.OnReply = func(any) {
			req.Completed = b.sim.Now()
			b.cfg.Tracer.Finish(req.Trace)
			if b.cfg.Sink != nil {
				b.cfg.Sink.Record(req)
			}
		}
		call.OnGiveUp = func() {
			req.Completed = b.sim.Now()
			req.Failed = true
			b.cfg.Tracer.Finish(req.Trace)
			if b.cfg.Sink != nil {
				b.cfg.Sink.Record(req)
			}
		}
		b.front.Transport.Send(b.front.Target, call)
	}
}

// OpenLoopConfig parameterizes a Poisson source, useful for analytic
// cross-checks against the closed-loop population.
type OpenLoopConfig struct {
	// Rate is the arrival rate in requests per second.
	Rate float64
	// Mix is the interaction mix; nil defaults to DefaultMix.
	Mix *Mix
	// Sink receives completed requests; may be nil.
	Sink Sink
}

// OpenLoop is a Poisson request source.
type OpenLoop struct {
	sim     *des.Simulator
	front   Frontend
	cfg     OpenLoopConfig
	stopped bool
	nextID  uint64
	sent    int64
}

// NewOpenLoop creates an open-loop generator; call Start to begin.
func NewOpenLoop(sim *des.Simulator, front Frontend, cfg OpenLoopConfig) *OpenLoop {
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	return &OpenLoop{sim: sim, front: front, cfg: cfg}
}

// Start begins Poisson arrivals.
func (o *OpenLoop) Start() {
	if o.cfg.Rate <= 0 {
		return
	}
	o.scheduleNext()
}

// Stop halts future arrivals.
func (o *OpenLoop) Stop() { o.stopped = true }

// Sent returns the number of requests emitted.
func (o *OpenLoop) Sent() int64 { return o.sent }

func (o *OpenLoop) scheduleNext() {
	gap := time.Duration(o.sim.Rand().ExpFloat64() / o.cfg.Rate * float64(time.Second))
	o.sim.Schedule(gap, func() {
		if o.stopped {
			return
		}
		o.fireOne()
		o.scheduleNext()
	})
}

func (o *OpenLoop) fireOne() {
	req := &Request{
		ID:        o.nextID,
		Class:     o.cfg.Mix.Pick(o.sim.Rand()),
		Submitted: o.sim.Now(),
	}
	o.nextID++
	o.sent++
	call := &simnet.Call{Payload: req}
	finish := func(failed bool) {
		req.Completed = o.sim.Now()
		req.Failed = failed
		if o.cfg.Sink != nil {
			o.cfg.Sink.Record(req)
		}
	}
	call.OnReply = func(reply any) {
		_, isFailure := reply.(server.Failure)
		finish(isFailure)
	}
	call.OnGiveUp = func() { finish(true) }
	o.front.Transport.Send(o.front.Target, call)
}
