// Command ctqo-lint runs the repo's thirteen analyzers — the determinism
// family (wallclock, seededrand, maporder, nilsafe, sharedmut,
// exhaustive, chanselect), the hot-path allocation family (allocs,
// hotpath, deferloop) and the interprocedural call-graph family (purity,
// goroleak, floatdet) — over the given packages. It is the mechanical
// enforcement of DESIGN.md's determinism contract (§§1–11), hot-path
// allocation contract (§12) and call-graph purity contract (§15), and
// runs in CI next to go vet.
//
// Usage:
//
//	ctqo-lint [flags] [packages]
//
//	ctqo-lint ./...                  # whole repo (the default)
//	ctqo-lint -json ./internal/...   # machine-readable diagnostics
//	ctqo-lint -maporder=false ./...  # disable one analyzer
//	ctqo-lint -findings-exit=0 ./... # report findings but exit 0
//
// Each analyzer has a boolean flag named after it (default true). A
// finding can be silenced in the source with a "//lint:allow <analyzer>
// <reason>" comment on the flagged line or the line above it.
//
// The requested packages' whole local dependency closure is analyzed, in
// dependency order, so facts-based analyzers (sharedmut, exhaustive,
// allocs/hotpath, purity) see the summaries their dependencies exported;
// findings are reported only for the requested packages. Disabling an
// analyzer another one requires (e.g. -allocs=false with hotpath on)
// still runs it for its facts — only its diagnostics are dropped. With
// -json, hotpath and purity findings carry a "chain" array tracing the
// call path from the annotated function down to the allocating construct
// or impure effect.
//
// -unused-allow audits the suppression comments themselves: an allow
// directive in a requested package that names an unknown analyzer, or
// that suppresses nothing under the analyzers that ran, is reported as a
// finding of the synthetic "unused-allow" analyzer.
//
// -benchout FILE records the run's wall clock (load + analysis, all
// analyzers) under the "lint" key of the keyed benchmark file FILE, in
// the BENCH_parallel.json format.
//
// Exit status: 0 when clean, the -findings-exit value (default 1) when
// any diagnostic was reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ctqosim/internal/benchrec"
	"ctqosim/internal/lint"
	"ctqosim/internal/lint/analysis"
	"ctqosim/internal/lint/analyzers"
	"ctqosim/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ctqo-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	verbose := fs.Bool("v", false, "report packages as they are checked and any type errors")
	findingsExit := fs.Int("findings-exit", 1, "exit status when findings are reported (0 makes findings non-fatal)")
	benchOut := fs.String("benchout", "", "record load+analysis wall clock under the \"lint\" key of this keyed benchmark `file`")
	unusedAllow := fs.Bool("unused-allow", false, "report //lint:allow directives that suppress nothing (stale) or name an unknown analyzer")
	all := analyzers.All()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
		return 2
	}
	modDir, modPath, err := loader.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
		return 2
	}
	l := loader.New(modPath, modDir, "")
	paths, err := l.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
		return 2
	}

	start := time.Now()
	order, err := l.Closure(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
		return 2
	}
	requested := make(map[string]bool, len(paths))
	for _, path := range paths {
		requested[path] = true
	}
	facts := analysis.NewStore()
	var audit *lint.AllowAudit
	if *unusedAllow {
		audit = lint.NewAllowAudit(active, all)
	}
	files := 0
	var findings []lint.Finding
	for _, path := range order {
		pkg, err := l.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctqo-lint: load %s: %v\n", path, err)
			return 2
		}
		files += len(pkg.Files)
		if *verbose {
			fmt.Fprintf(os.Stderr, "checking %s (%d files)\n", path, len(pkg.Files))
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "  type error: %v\n", terr)
			}
		}
		pkgAudit := audit
		if !requested[path] {
			pkgAudit = nil
		}
		fs, err := lint.RunPackage(l, pkg, active, modDir, facts, pkgAudit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
			return 2
		}
		if requested[path] {
			findings = append(findings, fs...)
		}
	}
	if audit != nil {
		findings = append(findings, audit.Findings(modDir)...)
	}
	lint.Sort(findings)
	elapsed := time.Since(start)

	if *benchOut != "" {
		record := map[string]any{
			"benchmark":     "lint",
			"packages":      len(order),
			"files":         files,
			"analyzers":     len(active),
			"findings":      len(findings),
			"cpus":          runtime.NumCPU(),
			"seconds_total": elapsed.Seconds(),
		}
		if err := benchrec.Update(*benchOut, "lint", record); err != nil {
			fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
			return 2
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
			return 2
		}
	} else if err := lint.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-lint:", err)
		return 2
	}
	if len(findings) > 0 {
		return *findingsExit
	}
	return 0
}
