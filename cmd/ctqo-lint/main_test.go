package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctqosim/internal/lint"
)

// writeModule lays out a throwaway module with one package containing a
// seededrand violation and a wallclock call that is legal there (the
// module is not under ctqosim's sim-time packages).
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmplint\n\ngo 1.22\n",
		"a.go": `package a

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func Now() time.Time { return time.Now() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// inDir runs f with the working directory switched to dir. os.Chdir
// rather than t.Chdir keeps the test independent of the go directive in
// the throwaway go.mod.
func inDir(t *testing.T, dir string, f func()) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	f()
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1024)
		tmp := make([]byte, 512)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	f()
	w.Close()
	out := <-done
	r.Close()
	return out
}

func TestRunReportsFindingsAsJSON(t *testing.T) {
	dir := writeModule(t)
	var code int
	out := captureStdout(t, func() {
		inDir(t, dir, func() {
			code = run([]string{"-json", "./..."})
		})
	})
	if code != 1 {
		t.Fatalf("run() = %d, want 1 (findings present); output:\n%s", code, out)
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the rand.Intn call):\n%s", len(findings), out)
	}
	f := findings[0]
	if f.Analyzer != "seededrand" {
		t.Errorf("finding analyzer = %q, want seededrand", f.Analyzer)
	}
	if f.File != "a.go" {
		t.Errorf("finding file = %q, want a.go (relative to the module)", f.File)
	}
	if f.Line == 0 || f.Col == 0 {
		t.Errorf("finding position %d:%d not set", f.Line, f.Col)
	}
}

func TestRunAnalyzerDisableFlag(t *testing.T) {
	dir := writeModule(t)
	var code int
	out := captureStdout(t, func() {
		inDir(t, dir, func() {
			code = run([]string{"-seededrand=false", "./..."})
		})
	})
	if code != 0 {
		t.Fatalf("run(-seededrand=false) = %d, want 0; output:\n%s", code, out)
	}
}

func TestRunBadFlag(t *testing.T) {
	dir := writeModule(t)
	var code int
	inDir(t, dir, func() {
		code = run([]string{"-definitely-not-a-flag"})
	})
	if code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

func TestRunFindingsExitFlag(t *testing.T) {
	dir := writeModule(t)
	for _, tc := range []struct {
		flag string
		want int
	}{
		{"-findings-exit=3", 3},
		{"-findings-exit=0", 0},
	} {
		var code int
		out := captureStdout(t, func() {
			inDir(t, dir, func() {
				code = run([]string{tc.flag, "./..."})
			})
		})
		if code != tc.want {
			t.Errorf("run(%s) = %d, want %d; output:\n%s", tc.flag, code, tc.want, out)
		}
		if out == "" {
			t.Errorf("run(%s) reported nothing; findings must still be printed", tc.flag)
		}
	}
}

func TestRunBenchout(t *testing.T) {
	dir := writeModule(t)
	benchFile := filepath.Join(t.TempDir(), "bench.json")
	captureStdout(t, func() {
		inDir(t, dir, func() {
			run([]string{"-benchout", benchFile, "./..."})
		})
	})
	data, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatalf("benchout file not written: %v", err)
	}
	var entries map[string]map[string]any
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("benchout is not a keyed JSON object: %v\n%s", err, data)
	}
	rec, ok := entries["lint"]
	if !ok {
		t.Fatalf("benchout has no \"lint\" key:\n%s", data)
	}
	for _, field := range []string{"benchmark", "packages", "files", "analyzers", "findings", "cpus", "seconds_total"} {
		if _, ok := rec[field]; !ok {
			t.Errorf("lint record missing %q:\n%s", field, data)
		}
	}
	if got := rec["findings"]; got != float64(1) {
		t.Errorf("lint record findings = %v, want 1", got)
	}
}

// TestRunRepoIsClean pins the audited state of this repository: the
// linter — all thirteen analyzers, including the facts-propagating
// sharedmut and the call-graph family (purity, goroleak, floatdet) —
// over the real module must exit 0. A regression that reintroduces
// wall-clock reads, unseeded randomness, a shared-Config write, an
// impure Tweak reach, an unjoined goroutine or a map-order float sum
// fails here, not just in CI.
//
// TestRepoCleanHotpath below re-checks with only the performance family
// enabled, so a hot-path regression is attributed to the right family
// even when a determinism analyzer also fires.
func TestRunRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/ctqo-lint -> repo root
	var code int
	out := captureStdout(t, func() {
		inDir(t, root, func() {
			code = run([]string{"./..."})
		})
	})
	if code != 0 {
		t.Fatalf("ctqo-lint over the repo = %d, want 0; findings:\n%s", code, out)
	}
}

// TestRepoCleanHotpath pins the hot-path allocation contract over the
// real module with only the performance family enabled: every
// //lint:hotpath annotation in the DES kernel, the simnet delivery
// path, the HDR record path and the disabled-tracer path must verify
// allocation-free (or within budget) statically. The dynamic half of
// the contract is hotpath_contract_test.go at the repo root.
func TestRepoCleanHotpath(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/ctqo-lint -> repo root
	args := []string{
		"-wallclock=false", "-seededrand=false", "-maporder=false",
		"-nilsafe=false", "-sharedmut=false", "-exhaustive=false",
		"-chanselect=false", "-purity=false", "-goroleak=false",
		"-floatdet=false",
		"./...",
	}
	var code int
	out := captureStdout(t, func() {
		inDir(t, root, func() {
			code = run(args)
		})
	})
	if code != 0 {
		t.Fatalf("hot-path lint over the repo = %d, want 0; findings:\n%s", code, out)
	}
}

// TestRunJSONChain pins the CLI end of the chain contract: a hotpath
// finding whose allocation happens in a callee carries the rendered
// call chain in the -json output.
func TestRunJSONChain(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmphot\n\ngo 1.22\n",
		"a.go": `package a

//lint:hotpath
func Hot() map[string]int { return helper() }

func helper() map[string]int { return make(map[string]int) }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var code int
	out := captureStdout(t, func() {
		inDir(t, dir, func() {
			code = run([]string{"-json", "./..."})
		})
	})
	if code != 1 {
		t.Fatalf("run() = %d, want 1 (hotpath finding); output:\n%s", code, out)
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Analyzer != "hotpath" {
		t.Fatalf("findings = %+v, want exactly one hotpath finding", findings)
	}
	if len(findings[0].Chain) != 1 {
		t.Fatalf("finding chain = %q, want one entry (the helper's make)", findings[0].Chain)
	}
}

// TestRunPurityJSONChain pins the CLI end of the purity contract: a
// //lint:pure function reaching a shared write three calls down carries
// the full rendered chain in the -json output.
func TestRunPurityJSONChain(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmppure\n\ngo 1.22\n",
		"a.go": `package a

var hits int

//lint:pure
func Root() { a1() }

func a1() { a2() }
func a2() { a3() }
func a3() { hits++ }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var code int
	out := captureStdout(t, func() {
		inDir(t, dir, func() {
			code = run([]string{"-json", "./..."})
		})
	})
	if code != 1 {
		t.Fatalf("run() = %d, want 1 (purity finding); output:\n%s", code, out)
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Analyzer != "purity" {
		t.Fatalf("findings = %+v, want exactly one purity finding", findings)
	}
	f := findings[0]
	if !strings.Contains(f.Message, "3 calls deep") {
		t.Errorf("message = %q, want it to report the depth (3 calls deep)", f.Message)
	}
	wantChain := []string{
		"//lint:pure function Root: calls tmppure.a1 (a.go:",
		"tmppure.a1: calls tmppure.a2 (a.go:",
		"tmppure.a2: calls tmppure.a3 (a.go:",
		"tmppure.a3: writes package variable hits (a.go:",
	}
	if len(f.Chain) != len(wantChain) {
		t.Fatalf("chain = %q, want %d entries", f.Chain, len(wantChain))
	}
	for i, want := range wantChain {
		if !strings.HasPrefix(f.Chain[i], want) {
			t.Errorf("chain[%d] = %q, want prefix %q", i, f.Chain[i], want)
		}
	}
}

// TestRunUnusedAllow pins the stale-suppression audit: -unused-allow
// reports directives that suppress nothing or name an unknown analyzer,
// skips directives whose analyzer was disabled for the run, and leaves
// working directives alone. Without the flag the audit never runs.
func TestRunUnusedAllow(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpallow\n\ngo 1.22\n",
		"a.go": `package a

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	//lint:allow seededrand jitter outside the replayed path
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func Stale() int {
	//lint:allow maporder nothing here iterates a map
	return 1
}

func Typo() int {
	//lint:allow nosuchanalyzer typo
	return 2
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	decode := func(out string) []lint.Finding {
		t.Helper()
		var findings []lint.Finding
		if err := json.Unmarshal([]byte(out), &findings); err != nil {
			t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
		}
		return findings
	}

	// Without the flag: the working allow suppresses the seededrand
	// finding and nothing else is reported.
	var code int
	out := captureStdout(t, func() {
		inDir(t, dir, func() { code = run([]string{"-json", "./..."}) })
	})
	if code != 0 || len(decode(out)) != 0 {
		t.Fatalf("baseline run = %d with findings %s, want clean", code, out)
	}

	// With the flag: the stale maporder directive and the unknown name
	// are reported; the working seededrand directive is not.
	out = captureStdout(t, func() {
		inDir(t, dir, func() { code = run([]string{"-unused-allow", "-json", "./..."}) })
	})
	if code != 1 {
		t.Fatalf("run(-unused-allow) = %d, want 1; output:\n%s", code, out)
	}
	findings := decode(out)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (stale + unknown):\n%s", len(findings), out)
	}
	for _, f := range findings {
		if f.Analyzer != "unused-allow" {
			t.Errorf("finding analyzer = %q, want unused-allow", f.Analyzer)
		}
		if strings.Contains(f.Message, "seededrand") {
			t.Errorf("working directive reported stale: %s", f.Message)
		}
	}
	if !strings.Contains(out, "unused //lint:allow maporder") {
		t.Errorf("stale maporder directive not reported:\n%s", out)
	}
	if !strings.Contains(out, "//lint:allow nosuchanalyzer: unknown analyzer") {
		t.Errorf("unknown analyzer name not reported:\n%s", out)
	}

	// Disabling seededrand leaves its (now inert) directive unreported:
	// it may be load-bearing under the full suite.
	out = captureStdout(t, func() {
		inDir(t, dir, func() {
			code = run([]string{"-seededrand=false", "-unused-allow", "-json", "./..."})
		})
	})
	if code != 1 {
		t.Fatalf("run(-seededrand=false -unused-allow) = %d, want 1; output:\n%s", code, out)
	}
	if got := decode(out); len(got) != 2 {
		t.Fatalf("got %d findings with seededrand disabled, want 2:\n%s", len(got), out)
	}
	if strings.Contains(out, "seededrand") {
		t.Errorf("directive for a disabled analyzer must be skipped, not reported:\n%s", out)
	}
}
