package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigureTableCoversTheEvaluation(t *testing.T) {
	figs := figures(true)
	want := map[string]bool{
		"1a": false, "1b": false, "1c": false,
		"3": false, "5": false, "7": false, "8": false, "9": false,
		"10": false, "11": false, "V-B-omitted": false, "abstract": false,
	}
	for _, f := range figs {
		if _, ok := want[f.id]; ok {
			want[f.id] = true
		}
		if f.paper == "" || f.render == nil {
			t.Errorf("figure %s incompletely described", f.id)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("figure %s missing from the regeneration table", id)
		}
	}
}

func TestRunSingleFigureQuick(t *testing.T) {
	// Regenerate one figure in quick mode into a temp dir and check the
	// artifacts land.
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-fig", "9", "-quick"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"queues.csv", "util.csv", "vlrt.csv", "histogram.csv"} {
		if _, err := os.Stat(filepath.Join(dir, "fig9", f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "summary.txt"))
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !strings.Contains(string(data), "Figure 9") {
		t.Fatalf("summary does not mention figure 9:\n%s", data)
	}
}
