package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestFigureTableCoversTheEvaluation(t *testing.T) {
	figs := figures(true)
	want := map[string]bool{
		"1a": false, "1b": false, "1c": false,
		"3": false, "5": false, "7": false, "8": false, "9": false,
		"10": false, "11": false, "V-B-omitted": false, "abstract": false,
	}
	for _, f := range figs {
		if _, ok := want[f.id]; ok {
			want[f.id] = true
		}
		if f.paper == "" || f.render == nil {
			t.Errorf("figure %s incompletely described", f.id)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("figure %s missing from the regeneration table", id)
		}
	}
}

func TestRunSingleFigureQuick(t *testing.T) {
	// Regenerate one figure in quick mode into a temp dir and check the
	// artifacts land.
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-fig", "9", "-quick"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"queues.csv", "util.csv", "vlrt.csv", "histogram.csv"} {
		if _, err := os.Stat(filepath.Join(dir, "fig9", f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "summary.txt"))
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !strings.Contains(string(data), "Figure 9") {
		t.Fatalf("summary does not mention figure 9:\n%s", data)
	}
}

// wallClause matches the per-figure wall-clock annotations, the only
// part of the generated output that legitimately varies run to run.
var wallClause = regexp.MustCompile(`\([0-9a-z.µ]+ wall\)`)

// TestParallelRegenerationByteIdentical regenerates the same figure with
// -parallel 1 and -parallel 4 and requires every artifact to match byte
// for byte (summary compared with wall-clock annotations stripped).
func TestParallelRegenerationByteIdentical(t *testing.T) {
	serialDir, parallelDir := t.TempDir(), t.TempDir()
	if err := run([]string{"-out", serialDir, "-fig", "9", "-quick", "-parallel", "1"}); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if err := run([]string{"-out", parallelDir, "-fig", "9", "-quick", "-parallel", "4"}); err != nil {
		t.Fatalf("parallel run: %v", err)
	}

	entries, err := os.ReadDir(filepath.Join(serialDir, "fig9"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("serial run produced no fig9 artifacts")
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(serialDir, "fig9", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(parallelDir, "fig9", e.Name()))
		if err != nil {
			t.Fatalf("parallel run missing artifact: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("fig9/%s differs between -parallel 1 and -parallel 4", e.Name())
		}
	}

	sa, err := os.ReadFile(filepath.Join(serialDir, "summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(filepath.Join(parallelDir, "summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	ca := wallClause.ReplaceAllString(string(sa), "(wall)")
	cb := wallClause.ReplaceAllString(string(sb), "(wall)")
	if ca != cb {
		t.Errorf("summary differs between -parallel 1 and -parallel 4:\n--- serial\n%s\n--- parallel\n%s", ca, cb)
	}
}

// TestBenchoutRecordsComparison checks the -benchout mode writes the
// serial-vs-parallel wall-clock record under its key of the keyed
// BENCH_parallel.json shape (shared with ntierlab sweep via benchrec).
func TestBenchoutRecordsComparison(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH_parallel.json")
	if err := run([]string{"-out", dir, "-fig", "9", "-quick", "-benchout", benchPath}); err != nil {
		t.Fatalf("run -benchout: %v", err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("benchout not written: %v", err)
	}
	var entries map[string]struct {
		Benchmark       string  `json:"benchmark"`
		CPUs            int     `json:"cpus"`
		Workers         int     `json:"workers"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Speedup         float64 `json:"speedup"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("benchout is not valid keyed JSON: %v\n%s", err, data)
	}
	rec, ok := entries["figures_regeneration"]
	if !ok {
		t.Fatalf("figures_regeneration key missing:\n%s", data)
	}
	if rec.Benchmark != "figures-regeneration" {
		t.Errorf("benchmark = %q", rec.Benchmark)
	}
	if rec.SerialSeconds <= 0 || rec.ParallelSeconds <= 0 || rec.Speedup <= 0 {
		t.Errorf("timings not recorded: %+v", rec)
	}
	if rec.Workers < 1 || rec.CPUs < 1 {
		t.Errorf("pool shape not recorded: %+v", rec)
	}
}
