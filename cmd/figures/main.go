// Command figures regenerates every table and figure of the paper's
// evaluation into an output directory: per-figure CSV timelines plus a
// paper-vs-measured summary (the source of EXPERIMENTS.md).
//
// The per-figure simulations are independent seed-deterministic DES runs,
// so they are fanned across a core.Runner worker pool (-parallel N;
// default GOMAXPROCS, 1 = strictly serial). Results are assembled in
// figure order regardless of scheduling, so every generated file is
// byte-identical whatever the pool size.
//
// Usage:
//
//	figures [-out out] [-fig 3] [-quick] [-parallel N] [-benchout file]
//	        [-simstats] [-cpuprofile file] [-memprofile file]
//
// -simstats profiles the DES kernel of each figure's run and prints the
// events/second to stdout only — never into summary.txt, whose bytes
// must stay identical across pool sizes. -cpuprofile/-memprofile write
// pprof profiles for the whole regeneration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"ctqosim/internal/benchrec"
	"ctqosim/internal/core"
	"ctqosim/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// figure couples a paper figure with its scenario and the checks that the
// paper's qualitative claims hold.
type figure struct {
	id     string
	paper  string // what the paper reports
	cfg    core.Config
	render func(res *core.Result) string
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	outDir := fs.String("out", "out", "output directory")
	only := fs.String("fig", "", "regenerate only this figure id (e.g. 3, 1a, 12)")
	quick := fs.Bool("quick", false, "shorter runs for smoke checks")
	parallel := fs.Int("parallel", 0,
		"simulation worker pool size; 0 = GOMAXPROCS, 1 = serial (output is byte-identical either way)")
	benchout := fs.String("benchout", "",
		"run the regeneration twice (serial, then -parallel) and record the wall-clock comparison as JSON in this file")
	simstats := fs.Bool("simstats", false,
		"profile the DES kernel per figure and print events/second (stdout only; summary.txt bytes are unchanged)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU pprof profile to this file")
	memProf := fs.String("memprofile", "", "write a heap pprof profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "figures: profiling:", err)
		}
	}()
	if *benchout != "" {
		return benchParallel(*benchout, *outDir, *only, *quick, *parallel, *simstats)
	}
	return regenerate(*outDir, *only, *quick, *parallel, *simstats)
}

// regenerate runs the selected figures on a pool of `workers` and writes
// CSVs, SVGs and the summary report. All simulation happens on the pool;
// files and report lines are emitted in fixed figure order afterwards.
// With simstats, each run self-profiles its DES kernel; that report goes
// to stdout only, so every generated file stays byte-identical.
func regenerate(outDir, only string, quick bool, workers int, simstats bool) error {
	runner := core.NewRunner(workers)

	var figs []figure
	for _, fig := range figures(quick) {
		if only == "" || fig.id == only {
			fig.cfg.SimStats = simstats
			figs = append(figs, fig)
		}
	}

	var report strings.Builder
	report.WriteString("paper-vs-measured summary (regenerate with: go run ./cmd/figures)\n")
	fmt.Fprintf(&report, "generated for simulated durations%s\n\n",
		map[bool]string{true: " (quick mode)", false: ""}[quick])

	results := make([]*core.Result, len(figs))
	walls := make([]time.Duration, len(figs))
	err := runner.Do(len(figs), func(i int) error {
		start := time.Now()
		res, err := core.New(figs[i].cfg).Run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", figs[i].id, err)
		}
		walls[i] = time.Since(start).Round(time.Millisecond)
		results[i] = res
		if res.SimStats != nil {
			fmt.Printf("figure %s done (%v) — %d events, %.3gM events/s, peak pending %d\n",
				figs[i].id, walls[i], res.SimStats.EventsExecuted,
				res.SimStats.EventsPerSecond/1e6, res.SimStats.PeakPending)
		} else {
			fmt.Printf("figure %s done (%v)\n", figs[i].id, walls[i])
		}
		return nil
	})
	if err != nil {
		return err
	}

	for i, fig := range figs {
		dir := filepath.Join(outDir, "fig"+fig.id)
		if err := core.WriteCSVs(results[i], dir); err != nil {
			return fmt.Errorf("figure %s: %w", fig.id, err)
		}
		if err := core.WriteSVGs(results[i], dir); err != nil {
			return fmt.Errorf("figure %s: %w", fig.id, err)
		}
		fmt.Fprintf(&report, "== Figure %s (%v wall)\n", fig.id, walls[i])
		fmt.Fprintf(&report, "paper:    %s\n", fig.paper)
		fmt.Fprintf(&report, "measured: %s\n\n", fig.render(results[i]))
	}

	if only == "" || only == "12" {
		start := time.Now()
		rows, err := runner.Figure12(nil)
		if err != nil {
			return fmt.Errorf("figure 12: %w", err)
		}
		if err := writeFig12CSV(filepath.Join(outDir, "fig12", "throughput.csv"), rows); err != nil {
			return err
		}
		fmt.Fprintf(&report, "== Figure 12 (%v wall)\n", time.Since(start).Round(time.Millisecond))
		report.WriteString("paper:    sync(2000 threads) decays 1159->374 req/s over concurrency 100->1600; async wins at high concurrency\n")
		report.WriteString("measured: concurrency sync async\n")
		for _, p := range rows {
			fmt.Fprintf(&report, "          %6d %6.0f %6.0f\n", p.Concurrency, p.Sync, p.Async)
		}
		report.WriteString("\n")
		fmt.Printf("figure 12 done (%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	summaryPath := filepath.Join(outDir, "summary.txt")
	if err := os.WriteFile(summaryPath, []byte(report.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n%s\nsummary written to %s\n", report.String(), summaryPath)
	return nil
}

// benchParallel times the full regeneration serially and then on the
// pool, and records the comparison — the repo's parallel-runner perf
// trajectory — as JSON (see BENCH_parallel.json at the repo root).
func benchParallel(benchPath, outDir, only string, quick bool, workers int, simstats bool) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	serialStart := time.Now()
	if err := regenerate(outDir, only, quick, 1, simstats); err != nil {
		return fmt.Errorf("serial pass: %w", err)
	}
	serial := time.Since(serialStart)

	parallelStart := time.Now()
	if err := regenerate(outDir, only, quick, workers, simstats); err != nil {
		return fmt.Errorf("parallel pass: %w", err)
	}
	par := time.Since(parallelStart)

	record := struct {
		Benchmark       string  `json:"benchmark"`
		Quick           bool    `json:"quick"`
		CPUs            int     `json:"cpus"`
		Workers         int     `json:"workers"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Speedup         float64 `json:"speedup"`
	}{
		Benchmark:       "figures-regeneration",
		Quick:           quick,
		CPUs:            runtime.NumCPU(),
		Workers:         workers,
		SerialSeconds:   serial.Seconds(),
		ParallelSeconds: par.Seconds(),
		Speedup:         serial.Seconds() / par.Seconds(),
	}
	if err := benchrec.Update(benchPath, "figures_regeneration", record); err != nil {
		return err
	}
	fmt.Printf("\nserial %v, parallel(%d) %v — %.2fx; recorded in %s\n",
		serial.Round(time.Millisecond), workers, par.Round(time.Millisecond),
		record.Speedup, benchPath)
	return nil
}

func figures(quick bool) []figure {
	shorten := func(cfg core.Config, quickDur time.Duration) core.Config {
		if quick {
			cfg.Duration = quickDur
		}
		return cfg
	}
	histRender := func(res *core.Result) string {
		name, util := res.HighestMeanUtil()
		return fmt.Sprintf("throughput %.0f req/s, highest avg CPU %.0f%% (%s), clusters at %v s, VLRT %d",
			res.Throughput, util*100, name, res.Histogram().ModeClusters(0.0001), res.VLRTCount)
	}
	ctqoRender := func(res *core.Result) string {
		drops := make([]string, 0, len(res.DropsPerServer))
		for _, tier := range res.System.TierNames() {
			if d := res.DropsPerServer[tier]; d > 0 {
				drops = append(drops, fmt.Sprintf("%s=%d", tier, d))
			}
		}
		dropsStr := "none"
		if len(drops) > 0 {
			dropsStr = strings.Join(drops, ", ")
		}
		episodes := ""
		if res.Report != nil {
			dirs := make(map[string]int)
			for _, ep := range res.Report.CTQOEpisodes() {
				dirs[ep.Direction.String()]++
			}
			names := make([]string, 0, len(dirs))
			for d := range dirs {
				names = append(names, d)
			}
			sort.Strings(names)
			for _, d := range names {
				episodes += fmt.Sprintf("; %d× %s", dirs[d], d)
			}
		}
		return fmt.Sprintf("drops: %s; VLRT %d%s", dropsStr, res.VLRTCount, episodes)
	}

	return []figure{
		{
			id:     "1a",
			paper:  "WL 4000: 572 req/s, 43% CPU, multi-modal peaks near 0/3/6/9s",
			cfg:    shorten(core.Figure1Config(4000), 60*time.Second),
			render: histRender,
		},
		{
			id:     "1b",
			paper:  "WL 7000: 990 req/s, 75% CPU, multi-modal peaks near 0/3/6/9s",
			cfg:    shorten(core.Figure1Config(7000), 60*time.Second),
			render: histRender,
		},
		{
			id:     "1c",
			paper:  "WL 8000: 1103 req/s, 85% CPU, multi-modal peaks near 0/3/6/9s",
			cfg:    shorten(core.Figure1Config(8000), 60*time.Second),
			render: histRender,
		},
		{
			id:     "3",
			paper:  "upstream CTQO: Tomcat millibottlenecks fill Apache past 278 (428 after spare process); drops and VLRT at Apache",
			cfg:    shorten(core.Figure3Config(), 45*time.Second),
			render: ctqoRender,
		},
		{
			id:     "5",
			paper:  "I/O millibottlenecks in MySQL every 30s; upstream CTQO chain MySQL->Tomcat->Apache; drops at Apache",
			cfg:    shorten(core.Figure5Config(), 70*time.Second),
			render: ctqoRender,
		},
		{
			id:     "7",
			paper:  "NX=1: no drops at Nginx; downstream CTQO drops at Tomcat (MaxSysQDepth 293)",
			cfg:    shorten(core.Figure7Config(), 45*time.Second),
			render: ctqoRender,
		},
		{
			id:     "8",
			paper:  "NX=2: MySQL millibottleneck; downstream CTQO drops at MySQL (MaxSysQDepth 228)",
			cfg:    shorten(core.Figure8Config(), 45*time.Second),
			render: ctqoRender,
		},
		{
			id:     "9",
			paper:  "NX=2: XTomcat millibottleneck; batch release overflows MySQL (228); drops at MySQL",
			cfg:    shorten(core.Figure9Config(), 45*time.Second),
			render: ctqoRender,
		},
		{
			id:     "10",
			paper:  "NX=3: same CPU millibottleneck; no CTQO, no drops",
			cfg:    shorten(core.Figure10Config(), 45*time.Second),
			render: ctqoRender,
		},
		{
			id:     "11",
			paper:  "NX=3: I/O millibottleneck in XMySQL; no CTQO, no drops",
			cfg:    shorten(core.Figure11Config(), 70*time.Second),
			render: ctqoRender,
		},
		{
			id:     "V-B-omitted",
			paper:  "NX=1, MySQL millibottleneck: upstream CTQO, drops at Tomcat (graphs omitted in the paper)",
			cfg:    shorten(core.NX1MySQLBottleneckConfig(), 45*time.Second),
			render: ctqoRender,
		},
		{
			id:     "abstract",
			paper:  "all-async system shows no CTQO at utilization as high as 83%",
			cfg:    shorten(core.AsyncHighUtilConfig(), 45*time.Second),
			render: ctqoRender,
		},
	}
}

func writeFig12CSV(path string, rows []core.ThroughputPoint) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("concurrency,sync_req_s,async_req_s\n")
	for _, p := range rows {
		fmt.Fprintf(&b, "%d,%.1f,%.1f\n", p.Concurrency, p.Sync, p.Async)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
