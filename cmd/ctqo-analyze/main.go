// Command ctqo-analyze runs a scenario with full transport tracing and
// prints the micro-level event analysis of Section IV: every detected
// millibottleneck, the drops it caused, and its CTQO classification.
//
// Usage:
//
//	ctqo-analyze [-nx 0] [-clients 7000] [-bottleneck app|db] [-kind cpu|io] [-duration 60s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctqo-analyze", flag.ContinueOnError)
	nx := fs.Int("nx", 0, "number of asynchronous tiers (0-3)")
	clients := fs.Int("clients", 7000, "steady client population")
	bottleneck := fs.String("bottleneck", "app", "millibottleneck location: web, app or db")
	kind := fs.String("kind", "cpu", "millibottleneck kind: cpu (consolidation) or io (log flush)")
	duration := fs.Duration("duration", 60*time.Second, "measured duration")
	seed := fs.Int64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nx < 0 || *nx > 3 {
		return fmt.Errorf("nx must be 0-3, got %d", *nx)
	}

	tier, err := parseTier(*bottleneck)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Name:     fmt.Sprintf("ctqo-analyze NX=%d, %s millibottleneck in %s", *nx, *kind, tier),
		NX:       ntier.NX(*nx),
		Clients:  *clients,
		Duration: *duration,
		Seed:     *seed,
		Trace:    true,
	}
	switch *kind {
	case "cpu":
		cfg.Consolidation = &core.ConsolidationSpec{Tier: tier}
	case "io":
		cfg.LogFlush = &core.LogFlushSpec{Tier: tier}
		if tier == core.TierDB {
			cfg.AppCores = 4 // the paper's Fig. 5 setup
		}
	default:
		return fmt.Errorf("kind must be cpu or io, got %q", *kind)
	}

	res, err := core.New(cfg).Run()
	if err != nil {
		return err
	}
	fmt.Println(res.Summary())
	fmt.Println(res.Report)

	if eps := res.Report.CTQOEpisodes(); len(eps) == 0 {
		fmt.Println("verdict: no CTQO — the millibottlenecks were absorbed without drops")
	} else {
		fmt.Printf("verdict: %d CTQO episode(s); see the classification above\n", len(eps))
	}
	return nil
}

func parseTier(s string) (core.Tier, error) {
	switch s {
	case "web":
		return core.TierWeb, nil
	case "app":
		return core.TierApp, nil
	case "db":
		return core.TierDB, nil
	default:
		return 0, fmt.Errorf("bottleneck must be web, app or db, got %q", s)
	}
}
