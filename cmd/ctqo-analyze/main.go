// Command ctqo-analyze runs a scenario with full transport tracing and
// prints the micro-level event analysis of Section IV: every detected
// millibottleneck, the drops it caused, and its CTQO classification —
// plus, with -spans/-breakdown/-perfetto, the per-request span-tree view
// of the same story.
//
// Usage:
//
//	ctqo-analyze [-nx 0] [-clients 7000] [-bottleneck app|db] [-kind cpu|io] [-duration 60s]
//	ctqo-analyze -scenario fig3 -breakdown
//	ctqo-analyze -scenario fig3 -spans -exemplars 3
//	ctqo-analyze -scenario fig3 -perfetto trace.json -waterfall tail.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/ntier"
	"ctqosim/internal/span"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctqo-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctqo-analyze", flag.ContinueOnError)
	nx := fs.Int("nx", 0, "number of asynchronous tiers (0-3)")
	clients := fs.Int("clients", 7000, "steady client population")
	bottleneck := fs.String("bottleneck", "app", "millibottleneck location: web, app or db")
	kind := fs.String("kind", "cpu", "millibottleneck kind: cpu (consolidation) or io (log flush)")
	duration := fs.Duration("duration", 60*time.Second, "measured duration")
	seed := fs.Int64("seed", 1, "RNG seed")
	scenario := fs.String("scenario", "", "run a named scenario instead of the flag-built config (see ntierlab list)")
	spans := fs.Bool("spans", false, "print span trees of the slowest tail exemplars")
	exemplars := fs.Int("exemplars", 3, "how many tail exemplars -spans prints")
	breakdown := fs.Bool("breakdown", false, "print the critical-path breakdown table (per-decile % in queue wait / service / retransmission)")
	perfetto := fs.String("perfetto", "", "write tail-exemplar traces as Chrome trace-event JSON (load at ui.perfetto.dev)")
	waterfall := fs.String("waterfall", "", "write the slowest exemplar as a waterfall SVG")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wantSpans := *spans || *breakdown || *perfetto != "" || *waterfall != ""

	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	var cfg core.Config
	if *scenario != "" {
		named, ok := core.Scenarios()[*scenario]
		if !ok {
			return fmt.Errorf("unknown scenario %q (see ntierlab list)", *scenario)
		}
		cfg = named
		// Explicit flags override the scenario's values.
		if setFlags["seed"] {
			cfg.Seed = *seed
		}
		if setFlags["duration"] {
			cfg.Duration = *duration
		}
		if setFlags["clients"] {
			cfg.Clients = *clients
		}
	} else {
		if *nx < 0 || *nx > 3 {
			return fmt.Errorf("nx must be 0-3, got %d", *nx)
		}
		tier, err := parseTier(*bottleneck)
		if err != nil {
			return err
		}
		cfg = core.Config{
			Name:     fmt.Sprintf("ctqo-analyze NX=%d, %s millibottleneck in %s", *nx, *kind, tier),
			NX:       ntier.NX(*nx),
			Clients:  *clients,
			Duration: *duration,
			Seed:     *seed,
			Trace:    true,
		}
		switch *kind {
		case "cpu":
			cfg.Consolidation = &core.ConsolidationSpec{Tier: tier}
		case "io":
			cfg.LogFlush = &core.LogFlushSpec{Tier: tier}
			if tier == core.TierDB {
				cfg.AppCores = 4 // the paper's Fig. 5 setup
			}
		default:
			return fmt.Errorf("kind must be cpu or io, got %q", *kind)
		}
	}
	if wantSpans {
		cfg.Spans = true
	}

	res, err := core.New(cfg).Run()
	if err != nil {
		return err
	}
	fmt.Println(res.Summary())
	if res.Report != nil {
		fmt.Println(res.Report)
		if eps := res.Report.CTQOEpisodes(); len(eps) == 0 {
			fmt.Println("verdict: no CTQO — the millibottlenecks were absorbed without drops")
		} else {
			fmt.Printf("verdict: %d CTQO episode(s); see the classification above\n", len(eps))
		}
	}

	if *breakdown {
		fmt.Println(res.SpanBreakdown)
		printAttribution(res)
	}
	if *spans {
		printExemplars(res, *exemplars)
	}
	if *perfetto != "" {
		if err := writePerfetto(res, *perfetto); err != nil {
			return err
		}
	}
	if *waterfall != "" {
		if err := writeWaterfall(res, *waterfall); err != nil {
			return err
		}
	}
	return nil
}

// printAttribution states the tail verdict: how much of the slowest
// requests' time was waiting rather than working.
func printAttribution(res *core.Result) {
	b := res.SpanBreakdown
	if b == nil {
		fmt.Println("span verdict: no traces recorded")
		return
	}
	row := b.VLRT
	if row.Count == 0 {
		row = b.P999
	}
	fmt.Printf("span verdict: %s requests spent %.1f%% of their time waiting "+
		"(%.1f%% in retransmission gaps, %.1f%% in queues/pools) and only "+
		"%.1f%% in service\n",
		row.Label, 100*row.WaitShare(),
		100*row.Share(span.KindRetransmit),
		100*(row.Share(span.KindQueueWait)+row.Share(span.KindPoolWait)),
		100*row.Share(span.KindService))
}

// printExemplars renders the n slowest kept span trees, cross-linking each
// retransmission gap to the dropping server.
func printExemplars(res *core.Result, n int) {
	ex := res.TailExemplars(n)
	if len(ex) == 0 {
		fmt.Println("no tail exemplars (no request exceeded the tail threshold)")
		return
	}
	fmt.Printf("slowest %d of %d kept tail exemplars:\n\n", len(ex), len(res.TailExemplars(0)))
	for _, t := range ex {
		fmt.Print(t.Tree())
		if who := dropSummary(t); who != "" {
			fmt.Printf("  ^ retransmission gaps caused by: %s\n", who)
		}
		fmt.Println()
	}
}

// dropSummary aggregates a trace's retransmission gaps by dropping server.
func dropSummary(t *span.Trace) string {
	counts := map[string]int{}
	for _, s := range t.Spans() {
		if s.Kind == span.KindRetransmit {
			counts[s.Tier]++
		}
	}
	if len(counts) == 0 {
		return ""
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s (%d gap(s))", name, counts[name]))
	}
	return strings.Join(parts, ", ")
}

// writePerfetto exports all kept tail exemplars (or the reservoir when the
// tail is empty) as Chrome trace-event JSON.
func writePerfetto(res *core.Result, path string) error {
	traces := res.TailExemplars(0)
	if len(traces) == 0 {
		traces = res.Spans.Reservoir()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := span.WriteTraceEvents(f, traces); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %d trace(s) to %s — load it at https://ui.perfetto.dev\n",
		len(traces), path)
	return f.Close()
}

// writeWaterfall renders the slowest exemplar as an SVG.
func writeWaterfall(res *core.Result, path string) error {
	ex := res.TailExemplars(1)
	if len(ex) == 0 {
		return fmt.Errorf("no tail exemplar to render")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteWaterfallSVG(f, ex[0]); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote waterfall of request %d (%v) to %s\n",
		ex[0].RequestID, ex[0].ResponseTime().Round(time.Millisecond), path)
	return f.Close()
}

func parseTier(s string) (core.Tier, error) {
	switch s {
	case "web":
		return core.TierWeb, nil
	case "app":
		return core.TierApp, nil
	case "db":
		return core.TierDB, nil
	default:
		return 0, fmt.Errorf("bottleneck must be web, app or db, got %q", s)
	}
}
