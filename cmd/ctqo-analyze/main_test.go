package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctqosim/internal/core"
	"ctqosim/internal/span"
)

func TestParseTier(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Tier
		wantErr bool
	}{
		{give: "web", want: core.TierWeb},
		{give: "app", want: core.TierApp},
		{give: "db", want: core.TierDB},
		{give: "disk", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseTier(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseTier(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseTier(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunValidatesFlags(t *testing.T) {
	tests := []struct {
		args []string
		want string
	}{
		{[]string{"-nx", "7"}, "nx must be"},
		{[]string{"-bottleneck", "nowhere"}, "bottleneck must be"},
		{[]string{"-kind", "magnetic"}, "kind must be"},
		{[]string{"-scenario", "fig99"}, "unknown scenario"},
	}
	for _, tt := range tests {
		err := run(tt.args)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v) = %v, want containing %q", tt.args, err, tt.want)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// A short real analysis run through the CLI path.
	err := run([]string{
		"-nx", "1", "-bottleneck", "app", "-kind", "cpu",
		"-duration", (20 * time.Second).String(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunSpanFlags drives the fig3 consolidation scenario (shortened: the
// first burst train lands at 15s and 18s, so 25s of measurement already
// produces the 3s and 6s clusters) through every span flag and checks the
// artifacts: the Perfetto JSON parses and contains a ~6s exemplar with two
// ~3s retransmission spans, and the waterfall SVG is well-formed.
func TestRunSpanFlags(t *testing.T) {
	dir := t.TempDir()
	perfetto := filepath.Join(dir, "trace.json")
	waterfall := filepath.Join(dir, "tail.svg")
	err := run([]string{
		"-scenario", "fig3",
		"-duration", (25 * time.Second).String(),
		"-breakdown", "-spans", "-exemplars", "1",
		"-perfetto", perfetto, "-waterfall", waterfall,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	raw, err := os.ReadFile(perfetto)
	if err != nil {
		t.Fatalf("perfetto output: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
			PID   uint64  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("perfetto JSON does not parse: %v", err)
	}
	roots := map[uint64]float64{}
	gaps := map[uint64]int{}
	for _, ev := range f.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		switch ev.Name {
		case "request":
			roots[ev.PID] = ev.Dur / 1e6
		case "retransmit":
			if d := ev.Dur / 1e6; d > 2.9 && d < 3.1 {
				gaps[ev.PID]++
			}
		}
	}
	found := false
	for pid, rt := range roots {
		if rt > 5.9 && rt < 6.3 && gaps[pid] == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no ~6s exemplar with two ~3s retransmission spans among %d traces", len(roots))
	}

	svg, err := os.ReadFile(waterfall)
	if err != nil {
		t.Fatalf("waterfall output: %v", err)
	}
	for _, want := range []string{"<svg", "retransmit", "</svg>"} {
		if !strings.Contains(string(svg), want) {
			t.Errorf("waterfall SVG missing %q", want)
		}
	}
}

// TestFig3BreakdownAttribution is the paper's headline claim as a test:
// on the Fig. 3 consolidation scenario, at least 90% of the p99.9 (and
// VLRT) response time must be attributed to retransmission gaps plus
// queue/pool waits — not service time.
func TestFig3BreakdownAttribution(t *testing.T) {
	cfg := core.Scenarios()["fig3"]
	cfg.Duration = 25 * time.Second
	res, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	b := res.SpanBreakdown
	if b == nil {
		t.Fatal("fig3 run produced no span breakdown")
	}
	if b.VLRT.Count == 0 {
		t.Fatal("fig3 run produced no VLRT requests")
	}
	if ws := b.P999.WaitShare(); ws < 0.9 {
		t.Errorf("p99.9 wait share = %.3f, want >= 0.9\n%s", ws, b)
	}
	if ws := b.VLRT.WaitShare(); ws < 0.9 {
		t.Errorf("VLRT wait share = %.3f, want >= 0.9\n%s", ws, b)
	}
	if b.VLRT.Share(span.KindService) > 0.1 {
		t.Errorf("VLRT service share = %.3f, want <= 0.1",
			b.VLRT.Share(span.KindService))
	}
}
