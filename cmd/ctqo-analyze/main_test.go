package main

import (
	"strings"
	"testing"
	"time"

	"ctqosim/internal/core"
)

func TestParseTier(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Tier
		wantErr bool
	}{
		{give: "web", want: core.TierWeb},
		{give: "app", want: core.TierApp},
		{give: "db", want: core.TierDB},
		{give: "disk", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseTier(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseTier(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseTier(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunValidatesFlags(t *testing.T) {
	tests := []struct {
		args []string
		want string
	}{
		{[]string{"-nx", "7"}, "nx must be"},
		{[]string{"-bottleneck", "nowhere"}, "bottleneck must be"},
		{[]string{"-kind", "magnetic"}, "kind must be"},
	}
	for _, tt := range tests {
		err := run(tt.args)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v) = %v, want containing %q", tt.args, err, tt.want)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// A short real analysis run through the CLI path.
	err := run([]string{
		"-nx", "1", "-bottleneck", "app", "-kind", "cpu",
		"-duration", (20 * time.Second).String(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
