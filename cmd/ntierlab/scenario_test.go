package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyScenario is a fast declarative scenario with a timed event and
// assertions that a healthy run satisfies.
const tinyScenario = `{
  "name": "cli-tiny",
  "warmup": "1s",
  "duration": "4s",
  "fleet": {
    "nx": 0,
    "clients": 50,
    "think_time": "100ms"
  },
  "events": [
    {"at": "2s", "action": "logflush", "id": "f", "tier": "db", "interval": "1s", "duration": "50ms"},
    {"at": "4s", "action": "stop", "id": "f"}
  ],
  "assertions": [
    {"metric": "throughput", "min": 1},
    {"metric": "failed", "max": 0}
  ]
}
`

// captureStdout runs fn with stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- data
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-outCh, runErr
}

func TestScenarioDispatchErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(good, []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		args []string
		want string
	}{
		{[]string{"scenario"}, "usage"},
		{[]string{"scenario", "bogus"}, "unknown scenario subcommand"},
		{[]string{"scenario", "run"}, "usage"},
		{[]string{"scenario", "run", "no-such-scenario"}, "unknown scenario"},
		{[]string{"scenario", "validate"}, "usage"},
		{[]string{"scenario", "validate", filepath.Join(dir, "missing.json")}, "missing.json"},
		{[]string{"run", "fig3", "-scenario-file", good}, "not both"},
		{[]string{"run", "-scenario-file", filepath.Join(dir, "missing.json")}, "missing.json"},
		{[]string{"sweep", "-scenario", "fig3", "-scenario-file", good}, "not both"},
	}
	for _, tt := range tests {
		_, err := captureStdout(t, func() error { return run(tt.args) })
		if err == nil {
			t.Errorf("run(%v): no error, want %q", tt.args, tt.want)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v) = %q, want containing %q", tt.args, err, tt.want)
		}
	}
}

// TestScenarioValidate covers the validate subcommand against a good
// file, a generated file, and a file with an unknown field (the strict
// parser must name the file and section).
func TestScenarioValidate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(good, []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	gen := filepath.Join(dir, "gen.json")
	if _, err := captureStdout(t, func() error {
		return run([]string{"scenario", "generate", "-seed", "42", "-o", gen})
	}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"scenario", "validate", good, gen})
	})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := string(out); !strings.Contains(got, "cli-tiny") || strings.Count(got, "ok ") != 2 {
		t.Errorf("validate output missing ok lines:\n%s", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","fleet":{"nx":0,"clients":5,"bogus":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = captureStdout(t, func() error {
		return run([]string{"scenario", "validate", bad})
	})
	if err == nil || !strings.Contains(err.Error(), "bad.json") || !strings.Contains(err.Error(), "fleet") {
		t.Errorf("validate(bad) = %v, want file and section context", err)
	}
}

// TestScenarioRunEndToEnd runs a scenario file through the CLI: the JSON
// summary must parse, the assertions must pass, and -benchout must record
// the wall clock under the scenario_run key.
func TestScenarioRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(file, []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := filepath.Join(dir, "bench.json")
	out, err := captureStdout(t, func() error {
		return run([]string{"scenario", "run", file, "-json", "-benchout", bench})
	})
	if err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	var summary struct {
		Scenario string `json:"scenario"`
	}
	if err := json.Unmarshal(out, &summary); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}

	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatalf("benchout not written: %v", err)
	}
	var entries map[string]json.RawMessage
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("benchout does not parse: %v", err)
	}
	raw, ok := entries["scenario_run"]
	if !ok {
		t.Fatalf("benchout missing scenario_run key: %s", data)
	}
	var rec scenarioRunRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Scenario != "cli-tiny" || rec.WallSeconds <= 0 || rec.Events != 2 || rec.Assertions != 2 {
		t.Errorf("scenario_run record = %+v", rec)
	}

	// A failing assertion must exit non-zero with the report's count.
	failing := strings.Replace(tinyScenario, `{"metric": "throughput", "min": 1}`,
		`{"metric": "throughput", "min": 1000000}`, 1)
	fileBad := filepath.Join(dir, "failing.json")
	if err := os.WriteFile(fileBad, []byte(failing), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = captureStdout(t, func() error {
		return run([]string{"scenario", "run", fileBad})
	})
	if err == nil || !strings.Contains(err.Error(), "assertions failed") {
		t.Errorf("failing assertion: err = %v, want assertions failed", err)
	}
}

// TestRunScenarioFileFlag checks the -scenario-file integration on the
// plain run subcommand, including assertion evaluation.
func TestRunScenarioFileFlag(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(file, []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"run", "-scenario-file", file})
	})
	if err != nil {
		t.Fatalf("run -scenario-file: %v", err)
	}
	if got := string(out); !strings.Contains(got, "cli-tiny") || !strings.Contains(got, "assertions passed") {
		t.Errorf("run output missing summary or assertion report:\n%s", got)
	}
}
