package main

import (
	"strings"
	"testing"
)

func TestScenarioTableComplete(t *testing.T) {
	all := scenarios()
	for _, name := range []string{
		"fig1-wl4000", "fig1-wl7000", "fig1-wl8000",
		"fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"nx1-mysql", "async-highutil",
	} {
		if _, ok := all[name]; !ok {
			t.Errorf("scenario %q missing", name)
		}
	}
	for name, cfg := range all {
		if cfg.Name == "" {
			t.Errorf("scenario %q has no description", name)
		}
		if cfg.Clients == 0 {
			t.Errorf("scenario %q has no clients", name)
		}
	}
}

func TestRunDispatchErrors(t *testing.T) {
	tests := []struct {
		args []string
		want string
	}{
		{nil, "usage"},
		{[]string{"bogus"}, "unknown command"},
		{[]string{"run"}, "usage"},
		{[]string{"run", "no-such-scenario"}, "unknown scenario"},
		{[]string{"predict"}, "usage"},
		{[]string{"predict", "x", "400ms", "278"}, "rate"},
		{[]string{"predict", "1000", "x", "278"}, "duration"},
		{[]string{"predict", "1000", "400ms", "x"}, "capacity"},
		{[]string{"fig12", "-points", "a,b"}, "points"},
	}
	for _, tt := range tests {
		err := run(tt.args)
		if err == nil {
			t.Errorf("run(%v): no error, want %q", tt.args, tt.want)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v) = %q, want containing %q", tt.args, err, tt.want)
		}
	}
}

func TestListAndPredictSucceed(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	// The paper's example: 1000 req/s × 0.4s against 278.
	if err := run([]string{"predict", "1000", "400ms", "278"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	// Non-overflow branch.
	if err := run([]string{"predict", "100", "400ms", "278"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
}
