package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func TestScenarioTableComplete(t *testing.T) {
	all := scenarios()
	for _, name := range []string{
		"fig1-wl4000", "fig1-wl7000", "fig1-wl8000",
		"fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"nx1-mysql", "async-highutil",
	} {
		if _, ok := all[name]; !ok {
			t.Errorf("scenario %q missing", name)
		}
	}
	for name, cfg := range all {
		if cfg.Name == "" {
			t.Errorf("scenario %q has no description", name)
		}
		if cfg.Clients == 0 {
			t.Errorf("scenario %q has no clients", name)
		}
	}
}

func TestRunDispatchErrors(t *testing.T) {
	tests := []struct {
		args []string
		want string
	}{
		{nil, "usage"},
		{[]string{"bogus"}, "unknown command"},
		{[]string{"run"}, "usage"},
		{[]string{"run", "no-such-scenario"}, "unknown scenario"},
		{[]string{"predict"}, "usage"},
		{[]string{"predict", "x", "400ms", "278"}, "rate"},
		{[]string{"predict", "1000", "x", "278"}, "duration"},
		{[]string{"predict", "1000", "400ms", "x"}, "capacity"},
		{[]string{"fig12", "-points", "a,b"}, "points"},
		{[]string{"sweep"}, "usage"},
		{[]string{"sweep", "-scenario", "no-such-scenario"}, "unknown scenario"},
		{[]string{"sweep", "-scenario", "fig3", "-seeds", "nope"}, "seeds"},
		{[]string{"sweep", "-scenario", "fig3", "-seeds", "9..3"}, "empty range"},
		{[]string{"sweep", "-scenario", "fig3", "-seeds", "0"}, "positive count"},
		{[]string{"sweep", "-scenario", "fig3", "-retention", "sometimes"}, "retention"},
		{[]string{"simstats", "-scenario", "no-such-scenario"}, "unknown scenario"},
		{[]string{"simstats", "-retention", "sometimes"}, "retention"},
		{[]string{"run", "fig3", "-retention", "sometimes"}, "retention"},
	}
	for _, tt := range tests {
		err := run(tt.args)
		if err == nil {
			t.Errorf("run(%v): no error, want %q", tt.args, tt.want)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v) = %q, want containing %q", tt.args, err, tt.want)
		}
	}
}

// TestRunJSONEchoesEffectiveConfig checks the reproducibility contract of
// -json: the emitted summary carries the resolved seed and every effective
// knob (defaults applied, kernel profile folded in), plus the span
// breakdown when -spans is on.
func TestRunJSONEchoesEffectiveConfig(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Drain concurrently so a summary larger than the pipe buffer cannot
	// block the writer.
	outCh := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- data
	}()
	runErr := run([]string{"run", "fig1-wl4000", "-json", "-spans", "-duration", "10s"})
	w.Close()
	os.Stdout = old
	out := <-outCh
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}

	var got struct {
		Seed            int64 `json:"seed"`
		EffectiveConfig struct {
			Seed             int64   `json:"seed"`
			Clients          int     `json:"clients"`
			ThinkTimeSeconds float64 `json:"thinkTimeSeconds"`
			WarmUpSeconds    float64 `json:"warmUpSeconds"`
			DurationSeconds  float64 `json:"durationSeconds"`
			RTOSeconds       float64 `json:"rtoSeconds"`
			MaxAttempts      int     `json:"maxAttempts"`
			Spans            bool    `json:"spans"`
		} `json:"effectiveConfig"`
		SpanBreakdown *struct {
			Requests int `json:"requests"`
		} `json:"spanBreakdown"`
	}
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	ec := got.EffectiveConfig
	if ec.Seed != 1 || got.Seed != ec.Seed {
		t.Errorf("resolved seed = %d (summary %d), want 1", ec.Seed, got.Seed)
	}
	if ec.Clients != 4000 {
		t.Errorf("clients = %d, want 4000", ec.Clients)
	}
	if ec.ThinkTimeSeconds != 7 {
		t.Errorf("thinkTimeSeconds = %v, want the defaulted 7", ec.ThinkTimeSeconds)
	}
	if ec.WarmUpSeconds != 10 {
		t.Errorf("warmUpSeconds = %v, want the defaulted 10", ec.WarmUpSeconds)
	}
	if ec.DurationSeconds != 10 {
		t.Errorf("durationSeconds = %v, want the overridden 10", ec.DurationSeconds)
	}
	if ec.RTOSeconds != 3 {
		t.Errorf("rtoSeconds = %v, want the default 3", ec.RTOSeconds)
	}
	if ec.MaxAttempts != 5 {
		t.Errorf("maxAttempts = %d, want the default 5", ec.MaxAttempts)
	}
	if !ec.Spans {
		t.Error("effectiveConfig.spans = false, want true under -spans")
	}
	if got.SpanBreakdown == nil || got.SpanBreakdown.Requests == 0 {
		t.Error("spanBreakdown missing or empty under -spans")
	}
}

// TestParallelFlagOnMultiRunSubcommands exercises the -parallel worker
// pool end to end on the two cheap multi-run subcommands (the matrix is
// covered by the core tests; its wiring is identical).
func TestParallelFlagOnMultiRunSubcommands(t *testing.T) {
	if err := run([]string{"fig12", "-points", "100", "-parallel", "2"}); err != nil {
		t.Fatalf("fig12 -parallel: %v", err)
	}
	if err := run([]string{"replicate", "fig1-wl4000", "-n", "2", "-duration", "5s", "-parallel", "2"}); err != nil {
		t.Fatalf("replicate -parallel: %v", err)
	}
}

func TestParseSeedRange(t *testing.T) {
	tests := []struct {
		in    string
		start int64
		count int
		fails bool
	}{
		{"1..500", 1, 500, false},
		{"42..42", 42, 1, false},
		{"7", 1, 7, false},
		{" 10 .. 12 ", 10, 3, false},
		{"-3..2", -3, 6, false},
		{"9..3", 0, 0, true},
		{"", 0, 0, true},
		{"a..b", 0, 0, true},
		{"-1", 0, 0, true},
	}
	for _, tt := range tests {
		start, count, err := parseSeedRange(tt.in)
		if tt.fails {
			if err == nil {
				t.Errorf("parseSeedRange(%q): no error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSeedRange(%q): %v", tt.in, err)
		} else if start != tt.start || count != tt.count {
			t.Errorf("parseSeedRange(%q) = %d, %d; want %d, %d", tt.in, start, count, tt.start, tt.count)
		}
	}
}

// TestSweepSubcommand exercises the sweep CLI end to end: the text report,
// a CSV file, and the benchout record (which is keyed JSON).
func TestSweepSubcommand(t *testing.T) {
	dir := t.TempDir()
	csvPath := dir + "/sweep.csv"
	if err := run([]string{"sweep", "-scenario", "fig1-wl4000", "-seeds", "1..4",
		"-duration", "5s", "-shard", "2", "-parallel", "2", "-csv", csvPath}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("sweep wrote no CSV: %v", err)
	}
	if !strings.Contains(string(csv), "vlrt_per_run") {
		t.Fatalf("CSV missing metrics:\n%s", csv)
	}

	benchPath := dir + "/BENCH_parallel.json"
	if err := run([]string{"sweep", "-scenario", "fig1-wl4000", "-seeds", "2",
		"-duration", "5s", "-parallel", "2", "-benchout", benchPath}); err != nil {
		t.Fatalf("sweep -benchout: %v", err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("benchout wrote no record: %v", err)
	}
	var rec map[string]struct {
		Benchmark string  `json:"benchmark"`
		Seeds     int     `json:"seeds"`
		Speedup   float64 `json:"speedup"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("benchout record does not parse: %v\n%s", err, data)
	}
	if rec["sweep"].Benchmark != "ntierlab-sweep" || rec["sweep"].Seeds != 2 || rec["sweep"].Speedup <= 0 {
		t.Fatalf("sweep record wrong: %+v", rec)
	}
}

// TestSimstatsSubcommand exercises the kernel self-profiling CLI end to
// end: the benchout record, the enforced baseline gate on a second run
// (pass at the default floor, fail at an unreachable one, disabled at
// zero), and the pprof flag.
func TestSimstatsSubcommand(t *testing.T) {
	dir := t.TempDir()
	benchPath := dir + "/BENCH_parallel.json"
	profPath := dir + "/cpu.pprof"
	args := []string{"simstats", "-scenario", "fig1-wl4000", "-duration", "5s",
		"-benchout", benchPath, "-cpuprofile", profPath}
	if err := run(args); err != nil {
		t.Fatalf("simstats: %v", err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("benchout wrote no record: %v", err)
	}
	var rec map[string]struct {
		Benchmark       string  `json:"benchmark"`
		Scenario        string  `json:"scenario"`
		Retention       string  `json:"retention"`
		EventsExecuted  uint64  `json:"events_executed"`
		EventsPerSecond float64 `json:"events_per_second"`
		PeakPending     int     `json:"peak_pending"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("benchout record does not parse: %v\n%s", err, data)
	}
	got := rec["simstats"]
	if got.Benchmark != "ntierlab-simstats" || got.Scenario != "fig1-wl4000" ||
		got.Retention != "bounded" {
		t.Fatalf("simstats record wrong: %+v", got)
	}
	if got.EventsExecuted == 0 || got.EventsPerSecond <= 0 || got.PeakPending <= 0 {
		t.Fatalf("simstats record has empty kernel counters: %+v", got)
	}
	if fi, err := os.Stat(profPath); err != nil || fi.Size() == 0 {
		t.Fatalf("cpuprofile not written: %v", err)
	}

	// Second run compares against the baseline just recorded: identical
	// work lands around 1.0x, far above the 0.5 default floor.
	if err := run([]string{"simstats", "-scenario", "fig1-wl4000",
		"-duration", "5s", "-benchout", benchPath}); err != nil {
		t.Fatalf("simstats against baseline: %v", err)
	}

	// An unreachable floor must fail the gate and leave the baseline
	// file untouched.
	before, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simstats", "-scenario", "fig1-wl4000",
		"-duration", "5s", "-benchout", benchPath, "-bench-floor", "1000"}); err == nil {
		t.Fatal("simstats with -bench-floor=1000 succeeded, want the enforced gate to fail")
	}
	after, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed gate overwrote the recorded baseline")
	}

	// Zero disables the gate entirely.
	if err := run([]string{"simstats", "-scenario", "fig1-wl4000",
		"-duration", "5s", "-benchout", benchPath, "-bench-floor", "0"}); err != nil {
		t.Fatalf("simstats with -bench-floor=0: %v", err)
	}
}

func TestListAndPredictSucceed(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	// The paper's example: 1000 req/s × 0.4s against 278.
	if err := run([]string{"predict", "1000", "400ms", "278"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	// Non-overflow branch.
	if err := run([]string{"predict", "100", "400ms", "278"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
}
