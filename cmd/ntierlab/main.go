// Command ntierlab runs reproduction scenarios from the command line.
//
// Usage:
//
//	ntierlab list
//	ntierlab run <scenario> [-scenario-file file.json] [-duration 60s]
//	              [-seed 1] [-csv dir] [-json]
//	              [-retention all|bounded] [-simstats]
//	              [-cpuprofile file] [-memprofile file]
//	ntierlab scenario run <file|name> [-duration 60s] [-seed 1] [-json]
//	              [-csv dir] [-benchout file]
//	ntierlab scenario validate <file>...
//	ntierlab scenario generate [-seed 1] [-o file.json]
//	ntierlab predict <rate req/s> <burst duration> <capacity>
//	ntierlab fig12 [-points 100,200,400,800,1600] [-parallel N]
//	ntierlab matrix [-duration 45s] [-parallel N]
//	ntierlab replicate <scenario> [-n 5] [-duration 60s] [-parallel N]
//	ntierlab sweep -scenario fig3 -seeds 1..500 [-shard 25] [-parallel N]
//	                [-duration 60s] [-csv file] [-json] [-benchout file]
//	                [-retention all|bounded] [-cpuprofile file] [-memprofile file]
//	ntierlab simstats [-scenario fig3] [-duration 60s] [-seed 1]
//	                [-retention all|bounded] [-benchout file]
//	                [-cpuprofile file] [-memprofile file]
//
// scenario is the declarative engine's front door: run executes one
// scenario file (or registry name), prints the summary and evaluates the
// file's assertions — a failing assertion exits non-zero; validate
// parses and compiles files without running them; generate emits a
// seeded random stress scenario. run, replicate, sweep and simstats also
// accept -scenario-file wherever a registry name is accepted.
//
// The multi-run subcommands (fig12, matrix, replicate, sweep) fan their
// independent simulations across a core.Runner worker pool: -parallel 0
// (the default) uses GOMAXPROCS workers, -parallel 1 runs strictly
// serially. Output is byte-identical whatever the pool size.
//
// sweep is the big-n engine: it partitions the seed range into shards,
// merges the per-shard accumulators in shard order, and reports mean±95%
// CI plus tail percentiles (p99, p99.9) of per-run VLRT counts, drops and
// p99 response time — the quantities that need hundreds of replications.
//
// simstats is the kernel's own benchmark: it runs one scenario with DES
// self-profiling on and reports events executed, events/second, the
// pending-heap high-water mark and allocation totals. With -benchout it
// records the measurement under the "simstats" key of the keyed JSON
// bench file and enforces a regression floor against the previously
// recorded baseline (-bench-floor adjusts the ratio, 0 disables) — the
// reference point for DES hot-path work.
//
// -retention bounded switches the response-time recorder to the
// constant-memory telemetry path (HDR histogram + windowed counters);
// the default, all, keeps every request exactly. -cpuprofile and
// -memprofile write pprof profiles for the process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ctqosim/internal/benchrec"
	"ctqosim/internal/core"
	"ctqosim/internal/metrics"
	"ctqosim/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ntierlab:", err)
		os.Exit(1)
	}
}

// scenarios maps CLI names to their configurations.
func scenarios() map[string]core.Config { return core.Scenarios() }

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ntierlab <list|run|scenario|predict|fig12|matrix|replicate|sweep|simstats> ...")
	}
	switch args[0] {
	case "list":
		return list()
	case "run":
		return runScenario(args[1:])
	case "scenario":
		return scenarioCmd(args[1:])
	case "predict":
		return predict(args[1:])
	case "fig12":
		return fig12(args[1:])
	case "matrix":
		return matrix(args[1:])
	case "replicate":
		return replicate(args[1:])
	case "sweep":
		return sweep(args[1:])
	case "simstats":
		return simstats(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func list() error {
	all := scenarios()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-16s %s\n", name, all[name].Name)
	}
	return nil
}

func runScenario(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	duration := fs.Duration("duration", 0, "override measured duration")
	seed := fs.Int64("seed", 0, "override RNG seed")
	csvDir := fs.String("csv", "", "write timeline CSVs into this directory")
	asJSON := fs.Bool("json", false, "emit the machine-readable summary instead of text")
	spans := fs.Bool("spans", false, "record per-request span traces and print the critical-path breakdown")
	retention := fs.String("retention", "", "telemetry retention: all (default, exact) or bounded (constant-memory)")
	withStats := fs.Bool("simstats", false, "profile the DES kernel and report events/second")
	scenarioFile := scenarioFileFlag(fs)
	cpuProf, memProf := profileFlags(fs)

	name, rest := splitLeadingName(args)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if name == "" && *scenarioFile == "" {
		return fmt.Errorf("usage: ntierlab run <scenario> [flags]")
	}
	cfg, doc, err := resolveScenario(name, *scenarioFile)
	if err != nil {
		return err
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *spans {
		cfg.Spans = true
	}
	ret, err := parseRetention(*retention)
	if err != nil {
		return err
	}
	cfg.Retention = ret
	cfg.SimStats = *withStats

	stopProf, err := startProfiling(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	start := time.Now()
	res, err := core.New(cfg).Run()
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return evaluateAssertions(doc, res, true)
	}
	fmt.Printf("simulated %v in %v wall time\n\n",
		res.End, time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Summary())
	if res.SimStats != nil {
		fmt.Println("kernel self-profile:")
		fmt.Println("  " + strings.ReplaceAll(res.SimStats.String(), "\n", "\n  "))
		fmt.Println()
	}
	if res.Report != nil {
		fmt.Println(res.Report)
	}
	if res.SpanBreakdown != nil {
		fmt.Println(res.SpanBreakdown)
	}
	printHistogram(res)
	if *csvDir != "" {
		if err := core.WriteCSVs(res, *csvDir); err != nil {
			return err
		}
		fmt.Printf("timelines written to %s\n", *csvDir)
	}
	return evaluateAssertions(doc, res, false)
}

// scenarioFileFlag registers the shared declarative-scenario flag on a
// subcommand that also accepts registry names.
func scenarioFileFlag(fs *flag.FlagSet) *string {
	return fs.String("scenario-file", "",
		"load the scenario from this declarative file instead of naming a registry entry")
}

// printHistogram renders the Fig. 1 style per-second summary.
func printHistogram(res *core.Result) {
	h := res.Histogram()
	perSecond := make(map[int]int64)
	for _, i := range h.NonZeroBins() {
		perSecond[int(h.BinStart(i)/time.Second)] += h.Count(i)
	}
	secs := make([]int, 0, len(perSecond))
	for s := range perSecond {
		secs = append(secs, s)
	}
	sort.Ints(secs)
	fmt.Println("response-time frequency by second (semi-log shape of Fig. 1):")
	for _, s := range secs {
		fmt.Printf("  [%2d-%2ds) %8d\n", s, s+1, perSecond[s])
	}
}

func predict(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: ntierlab predict <rate req/s> <duration> <capacity>")
	}
	rate, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return fmt.Errorf("rate: %w", err)
	}
	dur, err := time.ParseDuration(args[1])
	if err != nil {
		return fmt.Errorf("duration: %w", err)
	}
	capacity, err := strconv.Atoi(args[2])
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	p := core.PredictOverflow(rate, dur, capacity)
	fmt.Printf("arrivals during millibottleneck: %d\n", p.Arrivals)
	fmt.Printf("queueable (MaxSysQDepth):        %d\n", p.Capacity)
	if p.Overflows() {
		fmt.Printf("VERDICT: overflow - ~%d dropped packets expected\n", p.Dropped)
	} else {
		fmt.Printf("VERDICT: absorbed - shortest overflowing burst at this rate: %v\n",
			core.MinBurstForOverflow(rate, capacity).Round(time.Millisecond))
	}
	return nil
}

func fig12(args []string) error {
	fs := flag.NewFlagSet("fig12", flag.ContinueOnError)
	pointsFlag := fs.String("points", "", "comma-separated concurrency levels")
	parallel := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var points []int
	if *pointsFlag != "" {
		for _, s := range strings.Split(*pointsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("points: %w", err)
			}
			points = append(points, n)
		}
	}
	rows, err := core.NewRunner(*parallel).Figure12(points)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-22s %s\n", "concurrency",
		fmt.Sprintf("sync (%d threads)", core.Figure12Threads), "async")
	for _, p := range rows {
		fmt.Printf("%-12d %-22.0f %.0f\n", p.Concurrency, p.Sync, p.Async)
	}
	return nil
}

// parallelFlag registers the shared worker-pool flag on a multi-run
// subcommand's flag set.
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0,
		"simulation worker pool size; 0 = GOMAXPROCS, 1 = serial (output is byte-identical either way)")
}

// profileFlags registers the shared pprof flags on a subcommand's flag
// set. Pass the returned pointers to startProfiling after fs.Parse.
func profileFlags(fs *flag.FlagSet) (cpu, mem *string) {
	cpu = fs.String("cpuprofile", "", "write a CPU pprof profile to this file")
	mem = fs.String("memprofile", "", "write a heap pprof profile to this file on exit")
	return cpu, mem
}

// startProfiling starts the requested pprof collection and returns the
// stop function; deferred errors from stop are reported on stderr so
// they never mask the subcommand's own error.
func startProfiling(cpu, mem string) (func(), error) {
	stop, err := profiling.Start(cpu, mem)
	if err != nil {
		return nil, err
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ntierlab: profiling:", err)
		}
	}, nil
}

// parseRetention maps the -retention flag values onto metrics.Retention.
func parseRetention(s string) (metrics.Retention, error) {
	switch s {
	case "", "all":
		return metrics.RetainAll, nil
	case "bounded":
		return metrics.RetainBounded, nil
	default:
		return 0, fmt.Errorf("retention: want all or bounded, got %q", s)
	}
}

func replicate(args []string) error {
	fs := flag.NewFlagSet("replicate", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of replications")
	duration := fs.Duration("duration", 0, "override measured duration")
	scenarioFile := scenarioFileFlag(fs)
	parallel := parallelFlag(fs)

	name, rest := splitLeadingName(args)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if name == "" && *scenarioFile == "" {
		return fmt.Errorf("usage: ntierlab replicate <scenario> [-n 5]")
	}
	cfg, _, err := resolveScenario(name, *scenarioFile)
	if err != nil {
		return err
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	cfg.Trace = false

	stats, err := core.NewRunner(*parallel).Replicate(cfg, *n)
	// Partial-results contract: print whatever replications completed,
	// then report the joined per-seed errors.
	if stats.Throughput.N > 0 {
		fmt.Printf("%s over %d replications (95%% CI, seeds %v)\n",
			cfg.Name, stats.Throughput.N, stats.Seeds)
		fmt.Printf("  throughput [req/s]: %v\n", stats.Throughput)
		fmt.Printf("  VLRT per run:       %v\n", stats.VLRT)
		fmt.Printf("  drops per run:      %v\n", stats.Drops)
		fmt.Printf("  p99 [ms]:           %v\n", stats.P99Millis)
	}
	return err
}

// parseSeedRange parses "lo..hi" (inclusive) or a bare count N (meaning
// 1..N) into the first seed and the seed count.
func parseSeedRange(s string) (start int64, count int, err error) {
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		first, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("seeds: bad range start %q: %w", lo, err)
		}
		last, err := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("seeds: bad range end %q: %w", hi, err)
		}
		if last < first {
			return 0, 0, fmt.Errorf("seeds: empty range %d..%d", first, last)
		}
		span := uint64(last - first + 1)
		if span > 1<<31 {
			return 0, 0, fmt.Errorf("seeds: range %d..%d is absurdly large", first, last)
		}
		return first, int(span), nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		return 0, 0, fmt.Errorf("seeds: want lo..hi or a positive count, got %q", s)
	}
	return 1, n, nil
}

func sweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "", "scenario to sweep (see: ntierlab list)")
	scenarioFile := scenarioFileFlag(fs)
	seedsFlag := fs.String("seeds", "1..100", "seed range lo..hi (inclusive), or a count N meaning 1..N")
	duration := fs.Duration("duration", 0, "override measured duration")
	shard := fs.Int("shard", 0,
		fmt.Sprintf("seeds per shard; 0 = default %d (output is identical for any worker count at a fixed shard size)", core.DefaultSweepShardSize))
	csvPath := fs.String("csv", "", "write the per-metric CSV report to this file ('-' for stdout)")
	asJSON := fs.Bool("json", false, "emit the JSON report instead of text")
	benchout := fs.String("benchout", "",
		"time the sweep serially and on the pool, and record the comparison under the \"sweep\" key of this JSON file")
	retention := fs.String("retention", "", "telemetry retention: all (default, exact) or bounded (constant-memory)")
	parallel := parallelFlag(fs)
	cpuProf, memProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarioName == "" && *scenarioFile == "" {
		return fmt.Errorf("usage: ntierlab sweep -scenario <name> -seeds 1..500 [flags]")
	}
	cfg, _, err := resolveScenario(*scenarioName, *scenarioFile)
	if err != nil {
		return err
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	// Sweeps aggregate per-run statistics; per-event tracing would only
	// slow the hundreds of replications down.
	cfg.Trace = false
	cfg.Spans = false
	ret, err := parseRetention(*retention)
	if err != nil {
		return err
	}
	cfg.Retention = ret
	stopProf, err := startProfiling(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	start, count, err := parseSeedRange(*seedsFlag)
	if err != nil {
		return err
	}
	cfg.Seed = start
	sc := core.SweepConfig{Config: cfg, Seeds: count, ShardSize: *shard}

	if *benchout != "" {
		return benchSweep(*benchout, sc, *parallel)
	}

	wallStart := time.Now()
	stats, err := core.NewRunner(*parallel).Sweep(sc)
	wall := time.Since(wallStart).Round(time.Millisecond)
	// Partial-results contract: render what completed before reporting
	// the joined per-seed errors.
	if stats != nil {
		if *asJSON {
			data, jerr := stats.JSON()
			if jerr != nil {
				return jerr
			}
			fmt.Print(string(data))
		} else {
			fmt.Print(stats)
			fmt.Printf("  %d runs in %v wall\n", stats.Completed, wall)
		}
		if *csvPath != "" {
			if *csvPath == "-" {
				fmt.Print(string(stats.CSV()))
			} else if werr := os.WriteFile(*csvPath, stats.CSV(), 0o644); werr != nil {
				return werr
			} else if !*asJSON {
				fmt.Printf("  CSV written to %s\n", *csvPath)
			}
		}
	}
	return err
}

// benchSweep times the sweep serially and on the pool and records the
// comparison in the keyed BENCH_parallel.json format.
func benchSweep(benchPath string, sc core.SweepConfig, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	serialStart := time.Now()
	if _, err := core.NewRunner(1).Sweep(sc); err != nil {
		return fmt.Errorf("serial pass: %w", err)
	}
	serial := time.Since(serialStart)

	parallelStart := time.Now()
	stats, err := core.NewRunner(workers).Sweep(sc)
	if err != nil {
		return fmt.Errorf("parallel pass: %w", err)
	}
	par := time.Since(parallelStart)

	record := struct {
		Benchmark       string  `json:"benchmark"`
		Scenario        string  `json:"scenario"`
		Seeds           int     `json:"seeds"`
		ShardSize       int     `json:"shard_size"`
		CPUs            int     `json:"cpus"`
		Workers         int     `json:"workers"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Speedup         float64 `json:"speedup"`
	}{
		Benchmark:       "ntierlab-sweep",
		Scenario:        stats.Scenario,
		Seeds:           stats.Requested,
		ShardSize:       stats.ShardSize,
		CPUs:            runtime.NumCPU(),
		Workers:         workers,
		SerialSeconds:   serial.Seconds(),
		ParallelSeconds: par.Seconds(),
		Speedup:         serial.Seconds() / par.Seconds(),
	}
	if err := benchrec.Update(benchPath, "sweep", record); err != nil {
		return err
	}
	fmt.Print(stats)
	fmt.Printf("  serial %v, parallel(%d) %v — %.2fx; recorded in %s\n",
		serial.Round(time.Millisecond), workers, par.Round(time.Millisecond),
		record.Speedup, benchPath)
	return nil
}

// simstatsFloorRatio is the default enforced regression gate: a run
// below this fraction of the recorded baseline's events/second fails
// the command (leaving the baseline unchanged). -bench-floor overrides
// the ratio for noisy hardware; zero or negative disables the gate.
const simstatsFloorRatio = 0.5

// simstatsRecord is the "simstats" entry of the keyed bench file: the
// DES kernel's self-measured throughput baseline that hot-path work is
// compared against.
type simstatsRecord struct {
	Benchmark       string  `json:"benchmark"`
	Scenario        string  `json:"scenario"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	Retention       string  `json:"retention"`
	CPUs            int     `json:"cpus"`
	EventsExecuted  uint64  `json:"events_executed"`
	EventsScheduled uint64  `json:"events_scheduled"`
	PeakPending     int     `json:"peak_pending"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSecond float64 `json:"events_per_second"`
	AllocMB         float64 `json:"alloc_mb"`
	GCCycles        uint32  `json:"gc_cycles"`
}

// readSimstatsBaseline loads the previously recorded "simstats" entry
// from the keyed bench file, if one exists.
func readSimstatsBaseline(path string) (simstatsRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return simstatsRecord{}, false
	}
	entries := map[string]json.RawMessage{}
	if json.Unmarshal(data, &entries) != nil {
		return simstatsRecord{}, false
	}
	var rec simstatsRecord
	if raw, ok := entries["simstats"]; !ok || json.Unmarshal(raw, &rec) != nil {
		return simstatsRecord{}, false
	}
	return rec, true
}

func simstats(args []string) error {
	fs := flag.NewFlagSet("simstats", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "fig3", "scenario to profile (see: ntierlab list)")
	scenarioFile := scenarioFileFlag(fs)
	duration := fs.Duration("duration", 0, "override measured duration")
	seed := fs.Int64("seed", 0, "override RNG seed")
	retention := fs.String("retention", "bounded",
		"telemetry retention: all (exact) or bounded (constant-memory)")
	benchout := fs.String("benchout", "",
		"record the measurement under the \"simstats\" key of this JSON file (enforced comparison against the recorded baseline)")
	benchFloor := fs.Float64("bench-floor", simstatsFloorRatio,
		"fail when events/s drops below this fraction of the recorded baseline (0 or less disables the gate)")
	cpuProf, memProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	label := *scenarioName
	if *scenarioFile != "" {
		label = *scenarioFile
		*scenarioName = ""
	}
	cfg, _, err := resolveScenario(*scenarioName, *scenarioFile)
	if err != nil {
		return err
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	// The kernel benchmark measures the event loop, not the tracing
	// subsystems layered on it.
	cfg.Trace = false
	cfg.Spans = false
	cfg.SimStats = true
	ret, err := parseRetention(*retention)
	if err != nil {
		return err
	}
	cfg.Retention = ret
	retName := "all"
	if ret == metrics.RetainBounded {
		retName = "bounded"
	}

	stopProf, err := startProfiling(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	exp := core.New(cfg)
	defaulted := exp.Config()
	res, err := exp.Run()
	if err != nil {
		return err
	}
	st := res.SimStats
	fmt.Printf("%s seed %d, %v simulated, retention %s\n",
		cfg.Name, defaulted.Seed, res.End, retName)
	fmt.Println(st)
	fmt.Printf("telemetry footprint: %.1f KB\n",
		float64(res.Recorder.MemoryFootprint())/1024)

	if *benchout == "" {
		return nil
	}
	if base, ok := readSimstatsBaseline(*benchout); ok && base.EventsPerSecond > 0 {
		ratio := st.EventsPerSecond / base.EventsPerSecond
		if *benchFloor > 0 && ratio < *benchFloor {
			return fmt.Errorf(
				"%.3gM events/s is %.0f%% of the recorded baseline %.3gM, below the enforced %.0f%% floor (baseline left unchanged; override with -bench-floor, 0 disables)",
				st.EventsPerSecond/1e6, 100*ratio,
				base.EventsPerSecond/1e6, 100**benchFloor)
		}
		fmt.Printf("baseline: %.3gM events/s recorded, this run %.2fx (floor %.0f%%)\n",
			base.EventsPerSecond/1e6, ratio, 100**benchFloor)
	}
	record := simstatsRecord{
		Benchmark:       "ntierlab-simstats",
		Scenario:        label,
		Seed:            defaulted.Seed,
		DurationSeconds: defaulted.Duration.Seconds(),
		Retention:       retName,
		CPUs:            runtime.NumCPU(),
		EventsExecuted:  st.EventsExecuted,
		EventsScheduled: st.EventsScheduled,
		PeakPending:     st.PeakPending,
		WallSeconds:     st.WallSeconds,
		EventsPerSecond: st.EventsPerSecond,
		AllocMB:         float64(st.AllocBytes) / (1 << 20),
		GCCycles:        st.GCCycles,
	}
	if err := benchrec.Update(*benchout, "simstats", record); err != nil {
		return err
	}
	fmt.Printf("recorded in %s\n", *benchout)
	return nil
}

func matrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	duration := fs.Duration("duration", 45*time.Second, "measured duration per cell")
	parallel := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("running the full CTQO grid (4 architectures × 2 tiers × 2 kinds)...")
	cells, err := core.RunCTQOMatrix(core.MatrixConfig{
		Duration: *duration,
		Workers:  *parallel,
	})
	// A failing cell no longer aborts the grid: print what completed,
	// then report the joined per-cell errors.
	fmt.Print(core.FormatMatrix(cells))
	return err
}
