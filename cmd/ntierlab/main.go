// Command ntierlab runs reproduction scenarios from the command line.
//
// Usage:
//
//	ntierlab list
//	ntierlab run <scenario> [-duration 60s] [-seed 1] [-csv dir] [-json]
//	ntierlab predict <rate req/s> <burst duration> <capacity>
//	ntierlab fig12 [-points 100,200,400,800,1600] [-parallel N]
//	ntierlab matrix [-duration 45s] [-parallel N]
//	ntierlab replicate <scenario> [-n 5] [-duration 60s] [-parallel N]
//
// The multi-run subcommands (fig12, matrix, replicate) fan their
// independent simulations across a core.Runner worker pool: -parallel 0
// (the default) uses GOMAXPROCS workers, -parallel 1 runs strictly
// serially. Output is byte-identical whatever the pool size.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ctqosim/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ntierlab:", err)
		os.Exit(1)
	}
}

// scenarios maps CLI names to their configurations.
func scenarios() map[string]core.Config { return core.Scenarios() }

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ntierlab <list|run|predict|fig12> ...")
	}
	switch args[0] {
	case "list":
		return list()
	case "run":
		return runScenario(args[1:])
	case "predict":
		return predict(args[1:])
	case "fig12":
		return fig12(args[1:])
	case "matrix":
		return matrix(args[1:])
	case "replicate":
		return replicate(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func list() error {
	all := scenarios()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-16s %s\n", name, all[name].Name)
	}
	return nil
}

func runScenario(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	duration := fs.Duration("duration", 0, "override measured duration")
	seed := fs.Int64("seed", 0, "override RNG seed")
	csvDir := fs.String("csv", "", "write timeline CSVs into this directory")
	asJSON := fs.Bool("json", false, "emit the machine-readable summary instead of text")
	spans := fs.Bool("spans", false, "record per-request span traces and print the critical-path breakdown")

	if len(args) == 0 {
		return fmt.Errorf("usage: ntierlab run <scenario> [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cfg, ok := scenarios()[name]
	if !ok {
		return fmt.Errorf("unknown scenario %q (try: ntierlab list)", name)
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *spans {
		cfg.Spans = true
	}

	start := time.Now()
	res, err := core.New(cfg).Run()
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("simulated %v in %v wall time\n\n",
		res.End, time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Summary())
	if res.Report != nil {
		fmt.Println(res.Report)
	}
	if res.SpanBreakdown != nil {
		fmt.Println(res.SpanBreakdown)
	}
	printHistogram(res)
	if *csvDir != "" {
		if err := core.WriteCSVs(res, *csvDir); err != nil {
			return err
		}
		fmt.Printf("timelines written to %s\n", *csvDir)
	}
	return nil
}

// printHistogram renders the Fig. 1 style per-second summary.
func printHistogram(res *core.Result) {
	h := res.Histogram()
	perSecond := make(map[int]int64)
	for _, i := range h.NonZeroBins() {
		perSecond[int(h.BinStart(i)/time.Second)] += h.Count(i)
	}
	secs := make([]int, 0, len(perSecond))
	for s := range perSecond {
		secs = append(secs, s)
	}
	sort.Ints(secs)
	fmt.Println("response-time frequency by second (semi-log shape of Fig. 1):")
	for _, s := range secs {
		fmt.Printf("  [%2d-%2ds) %8d\n", s, s+1, perSecond[s])
	}
}

func predict(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: ntierlab predict <rate req/s> <duration> <capacity>")
	}
	rate, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return fmt.Errorf("rate: %w", err)
	}
	dur, err := time.ParseDuration(args[1])
	if err != nil {
		return fmt.Errorf("duration: %w", err)
	}
	capacity, err := strconv.Atoi(args[2])
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	p := core.PredictOverflow(rate, dur, capacity)
	fmt.Printf("arrivals during millibottleneck: %d\n", p.Arrivals)
	fmt.Printf("queueable (MaxSysQDepth):        %d\n", p.Capacity)
	if p.Overflows() {
		fmt.Printf("VERDICT: overflow - ~%d dropped packets expected\n", p.Dropped)
	} else {
		fmt.Printf("VERDICT: absorbed - shortest overflowing burst at this rate: %v\n",
			core.MinBurstForOverflow(rate, capacity).Round(time.Millisecond))
	}
	return nil
}

func fig12(args []string) error {
	fs := flag.NewFlagSet("fig12", flag.ContinueOnError)
	pointsFlag := fs.String("points", "", "comma-separated concurrency levels")
	parallel := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var points []int
	if *pointsFlag != "" {
		for _, s := range strings.Split(*pointsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("points: %w", err)
			}
			points = append(points, n)
		}
	}
	rows, err := core.NewRunner(*parallel).Figure12(points)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-22s %s\n", "concurrency",
		fmt.Sprintf("sync (%d threads)", core.Figure12Threads), "async")
	for _, p := range rows {
		fmt.Printf("%-12d %-22.0f %.0f\n", p.Concurrency, p.Sync, p.Async)
	}
	return nil
}

// parallelFlag registers the shared worker-pool flag on a multi-run
// subcommand's flag set.
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0,
		"simulation worker pool size; 0 = GOMAXPROCS, 1 = serial (output is byte-identical either way)")
}

func replicate(args []string) error {
	fs := flag.NewFlagSet("replicate", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of replications")
	duration := fs.Duration("duration", 0, "override measured duration")
	parallel := parallelFlag(fs)

	if len(args) == 0 {
		return fmt.Errorf("usage: ntierlab replicate <scenario> [-n 5]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cfg, ok := scenarios()[name]
	if !ok {
		return fmt.Errorf("unknown scenario %q (try: ntierlab list)", name)
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	cfg.Trace = false

	stats, err := core.NewRunner(*parallel).Replicate(cfg, *n)
	if err != nil {
		return err
	}
	fmt.Printf("%s over %d replications (95%% CI, seeds %v)\n", cfg.Name, *n, stats.Seeds)
	fmt.Printf("  throughput [req/s]: %v\n", stats.Throughput)
	fmt.Printf("  VLRT per run:       %v\n", stats.VLRT)
	fmt.Printf("  drops per run:      %v\n", stats.Drops)
	fmt.Printf("  p99 [ms]:           %v\n", stats.P99Millis)
	return nil
}

func matrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	duration := fs.Duration("duration", 45*time.Second, "measured duration per cell")
	parallel := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("running the full CTQO grid (4 architectures × 2 tiers × 2 kinds)...")
	cells, err := core.RunCTQOMatrix(core.MatrixConfig{
		Duration: *duration,
		Workers:  *parallel,
	})
	// A failing cell no longer aborts the grid: print what completed,
	// then report the joined per-cell errors.
	fmt.Print(core.FormatMatrix(cells))
	return err
}
