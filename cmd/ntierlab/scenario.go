package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ctqosim/internal/benchrec"
	"ctqosim/internal/core"
	"ctqosim/internal/scenario"
)

// resolveScenario turns a registry name or an on-disk scenario file into
// a runnable config plus (when available) the parsed document, whose
// assertions are evaluated after the run. Exactly one of name and file
// must be given.
func resolveScenario(name, file string) (core.Config, *scenario.Document, error) {
	switch {
	case name != "" && file != "":
		return core.Config{}, nil, fmt.Errorf("give a scenario name or -scenario-file, not both")
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return core.Config{}, nil, err
		}
		doc, err := scenario.Parse(file, data)
		if err != nil {
			return core.Config{}, nil, err
		}
		cfg, err := core.FromScenario(doc)
		if err != nil {
			return core.Config{}, nil, fmt.Errorf("%s: %w", file, err)
		}
		return cfg, doc, nil
	case name != "":
		cfg, ok := scenarios()[name]
		if !ok {
			return core.Config{}, nil, fmt.Errorf("unknown scenario %q (try: ntierlab list)", name)
		}
		return cfg, core.ScenarioDocs()[name], nil
	default:
		return core.Config{}, nil, fmt.Errorf("no scenario given (name it, or use -scenario-file)")
	}
}

// splitLeadingName peels a positional scenario name off a subcommand's
// argument list, so "run fig3 -json" and "run -scenario-file f.json"
// both parse.
func splitLeadingName(args []string) (name string, rest []string) {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		return args[0], args[1:]
	}
	return "", args
}

// evaluateAssertions renders and checks a document's assertion section
// against a finished run; nil doc or an empty section is a pass.
func evaluateAssertions(doc *scenario.Document, res *core.Result, quiet bool) error {
	if doc == nil || len(doc.Assertions) == 0 {
		return nil
	}
	report := scenario.Evaluate(doc.Assertions, res.Outcome())
	if !quiet {
		fmt.Println("assertions:")
		fmt.Println(report)
	}
	if !report.Pass() {
		return fmt.Errorf("%d of %d assertions failed", report.Failed(), len(report.Results))
	}
	return nil
}

func scenarioCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ntierlab scenario <run|validate|generate> ...")
	}
	switch args[0] {
	case "run":
		return scenarioRun(args[1:])
	case "validate":
		return scenarioValidate(args[1:])
	case "generate":
		return scenarioGenerate(args[1:])
	default:
		return fmt.Errorf("unknown scenario subcommand %q (want run, validate or generate)", args[0])
	}
}

// scenarioRunRecord is the "scenario_run" entry of the keyed bench file:
// the wall clock of one declarative scenario run, the reference point for
// scenario-engine overhead.
type scenarioRunRecord struct {
	Benchmark       string  `json:"benchmark"`
	Scenario        string  `json:"scenario"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	Events          int     `json:"events"`
	Assertions      int     `json:"assertions"`
	CPUs            int     `json:"cpus"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimSecondsPerS  float64 `json:"sim_seconds_per_wall_second"`
}

func scenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	duration := fs.Duration("duration", 0, "override measured duration")
	seed := fs.Int64("seed", 0, "override RNG seed")
	asJSON := fs.Bool("json", false, "emit the machine-readable summary instead of text")
	csvDir := fs.String("csv", "", "write timeline CSVs into this directory")
	benchout := fs.String("benchout", "",
		"record the run's wall clock under the \"scenario_run\" key of this JSON file")
	name, rest := splitLeadingName(args)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("usage: ntierlab scenario run <file|name> [flags]")
	}
	// A path that exists on disk is a file; anything else is tried as a
	// registry name.
	var cfg core.Config
	var doc *scenario.Document
	var err error
	if _, statErr := os.Stat(name); statErr == nil {
		cfg, doc, err = resolveScenario("", name)
	} else {
		cfg, doc, err = resolveScenario(name, "")
	}
	if err != nil {
		return err
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	exp := core.New(cfg)
	defaulted := exp.Config()
	start := time.Now()
	res, err := exp.Run()
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if *asJSON {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("simulated %v in %v wall time\n\n", res.End, wall.Round(time.Millisecond))
		fmt.Println(res.Summary())
		if res.Report != nil {
			fmt.Println(res.Report)
		}
	}
	if *csvDir != "" {
		if err := core.WriteCSVs(res, *csvDir); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Printf("timelines written to %s\n", *csvDir)
		}
	}
	if *benchout != "" {
		record := scenarioRunRecord{
			Benchmark:       "ntierlab-scenario-run",
			Scenario:        defaulted.Name,
			Seed:            defaulted.Seed,
			DurationSeconds: defaulted.Duration.Seconds(),
			Events:          eventCount(doc),
			Assertions:      assertionCount(doc),
			CPUs:            runtime.NumCPU(),
			WallSeconds:     wall.Seconds(),
			SimSecondsPerS:  res.End.Seconds() / wall.Seconds(),
		}
		if err := benchrec.Update(*benchout, "scenario_run", record); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Printf("wall clock recorded in %s\n", *benchout)
		}
	}
	return evaluateAssertions(doc, res, *asJSON)
}

func eventCount(doc *scenario.Document) int {
	if doc == nil {
		return 0
	}
	return len(doc.Events)
}

func assertionCount(doc *scenario.Document) int {
	if doc == nil {
		return 0
	}
	return len(doc.Assertions)
}

func scenarioValidate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ntierlab scenario validate <file>...")
	}
	var errs []error
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		doc, err := scenario.Parse(path, data)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if _, err := core.FromScenario(doc); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
			continue
		}
		fmt.Printf("ok %-40s %q (%d events, %d assertions)\n",
			path, doc.Name, len(doc.Events), len(doc.Assertions))
	}
	return errors.Join(errs...)
}

func scenarioGenerate(args []string) error {
	fs := flag.NewFlagSet("scenario generate", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed; the same seed always yields the same scenario")
	out := fs.String("o", "", "write the scenario to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc := scenario.Generate(*seed)
	data, err := doc.Marshal()
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	fmt.Print(string(data))
	return nil
}
